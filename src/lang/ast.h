#ifndef TABULAR_LANG_AST_H_
#define TABULAR_LANG_AST_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "lang/param.h"

namespace tabular::lang {

/// The tabular-algebra operations available in assignment statements
/// (paper §3.1–3.5).
enum class OpKind {
  kUnion,
  kDifference,
  kIntersection,
  kProduct,
  kRename,
  kProject,
  kSelect,
  kSelectConst,
  kGroup,
  kMerge,
  kSplit,
  kCollapse,
  kTranspose,
  kSwitch,
  kCleanUp,
  kPurge,
  kTupleNew,
  kSetNew,
};

/// Lower-case surface keyword for `op` ("group", "cleanup", ...).
const char* OpKindToString(OpKind op);

/// `T <- (operation)(parameter list)(argument list)` (paper §3).
///
/// `params` is op-specific, in the order of the operation's surface
/// syntax:
///   rename      {to, from}            — RENAME_{B<-A}
///   project     {attr-set}
///   select      {A, B}                — σ_{A=B}
///   selectconst {A, V}                — σ_{A='V'}
///   group       {by-set, on-set}
///   merge       {on-set, by-set}
///   split       {on-set}
///   collapse    {by-set}
///   switch      {V}
///   cleanup     {by-set, on-set}
///   purge       {on-set, by-set}
///   tuplenew    {A}
///   setnew      {A}
/// and empty for union/difference/intersection/product/transpose.
struct Assignment {
  OpKind op = OpKind::kUnion;
  Param target;
  std::vector<Param> params;
  std::vector<Param> args;  // table-name parameters

  std::string ToString() const;
};

struct Statement;

/// `drop T;` — removes every table named T from the database. Not part of
/// the paper's algebra (results there are replaced by reassignment); an
/// extension used by the optimizer to reclaim scratch tables of generated
/// programs.
struct DropStatement {
  Param target;
  std::string ToString() const;
};

/// `while R ≠ ∅ do P` (paper §3.5): repeats `body` as long as some table
/// matching `condition` has at least one data row.
struct WhileLoop {
  Param condition;
  std::vector<Statement> body;

  std::string ToString() const;
};

/// One program statement.
struct Statement {
  std::variant<Assignment, WhileLoop, DropStatement> node;

  std::string ToString() const;
};

/// A tabular-algebra program: a statement sequence (paper §3.6).
struct Program {
  std::vector<Statement> statements;

  std::string ToString() const;
};

}  // namespace tabular::lang

#endif  // TABULAR_LANG_AST_H_
