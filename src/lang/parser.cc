#include "lang/parser.h"

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace tabular::lang {

using tabular::Result;
using tabular::Status;
using core::Symbol;

namespace {

enum class TokKind {
  kIdent,     // bare word: a name
  kQuoted,    // 'text': a value
  kNumber,    // 50: a value
  kUnder,     // _
  kStar,      // *k
  kArrow,     // <-
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kSemi,
  kEq,
  kSlash,
  kTilde,
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  int number = 0;  // wildcard id for kStar
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= src_.size()) break;
      size_t start = pos_;
      char c = src_[pos_];
      if (c == '<' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '-') {
        pos_ += 2;
        out.push_back({TokKind::kArrow, "<-", 0, start});
      } else if (c == '(') {
        ++pos_;
        out.push_back({TokKind::kLParen, "(", 0, start});
      } else if (c == ')') {
        ++pos_;
        out.push_back({TokKind::kRParen, ")", 0, start});
      } else if (c == '{') {
        ++pos_;
        out.push_back({TokKind::kLBrace, "{", 0, start});
      } else if (c == '}') {
        ++pos_;
        out.push_back({TokKind::kRBrace, "}", 0, start});
      } else if (c == ',') {
        ++pos_;
        out.push_back({TokKind::kComma, ",", 0, start});
      } else if (c == ';') {
        ++pos_;
        out.push_back({TokKind::kSemi, ";", 0, start});
      } else if (c == '=') {
        ++pos_;
        out.push_back({TokKind::kEq, "=", 0, start});
      } else if (c == '/') {
        ++pos_;
        out.push_back({TokKind::kSlash, "/", 0, start});
      } else if (c == '~') {
        ++pos_;
        out.push_back({TokKind::kTilde, "~", 0, start});
      } else if (c == '*') {
        ++pos_;
        int id = 0;
        while (pos_ < src_.size() && std::isdigit(src_[pos_])) {
          id = id * 10 + (src_[pos_++] - '0');
        }
        out.push_back({TokKind::kStar, "*", id, start});
      } else if (c == '\'') {
        ++pos_;
        std::string text;
        while (pos_ < src_.size() && src_[pos_] != '\'') {
          text.push_back(src_[pos_++]);
        }
        if (pos_ >= src_.size()) {
          return Status::ParseError("unterminated quoted value at offset " +
                                    std::to_string(start));
        }
        ++pos_;
        out.push_back({TokKind::kQuoted, std::move(text), 0, start});
      } else if (std::isdigit(c)) {
        std::string text;
        while (pos_ < src_.size() &&
               (std::isdigit(src_[pos_]) || src_[pos_] == '.')) {
          text.push_back(src_[pos_++]);
        }
        out.push_back({TokKind::kNumber, std::move(text), 0, start});
      } else if (c == '_' &&
                 (pos_ + 1 >= src_.size() || !IsWordChar(src_[pos_ + 1]))) {
        ++pos_;
        out.push_back({TokKind::kUnder, "_", 0, start});
      } else if (IsWordStart(c)) {
        std::string text;
        while (pos_ < src_.size() && IsWordChar(src_[pos_])) {
          text.push_back(src_[pos_++]);
        }
        out.push_back({TokKind::kIdent, std::move(text), 0, start});
      } else {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
      }
    }
    out.push_back({TokKind::kEnd, "", 0, pos_});
    return out;
  }

 private:
  static bool IsWordStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsWordChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }

  void SkipSpaceAndComments() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '-') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<Program> ParseAll() {
    Program p;
    while (!At(TokKind::kEnd)) {
      TABULAR_ASSIGN_OR_RETURN(Statement s, ParseOne());
      p.statements.push_back(std::move(s));
    }
    return p;
  }

  Result<Statement> ParseOne() {
    if (At(TokKind::kIdent) && Cur().text == "while") {
      return ParseWhile();
    }
    if (At(TokKind::kIdent) && Cur().text == "drop") {
      Advance();
      DropStatement d;
      TABULAR_ASSIGN_OR_RETURN(d.target, ParseItemParam());
      TABULAR_RETURN_NOT_OK(Expect(TokKind::kSemi, "';'"));
      Statement out;
      out.node = std::move(d);
      return out;
    }
    return ParseAssignment();
  }

  bool AtEnd() const { return At(TokKind::kEnd); }

 private:
  const Token& Cur() const { return toks_[i_]; }
  bool At(TokKind k) const { return Cur().kind == k; }
  void Advance() { ++i_; }

  Status Expect(TokKind k, const char* what) {
    if (!At(k)) {
      return Status::ParseError(std::string("expected ") + what + " at '" +
                                Cur().text + "' (offset " +
                                std::to_string(Cur().pos) + ")");
    }
    Advance();
    return Status::OK();
  }

  Status ExpectKeyword(const char* kw) {
    if (!At(TokKind::kIdent) || Cur().text != kw) {
      return Status::ParseError(std::string("expected '") + kw + "' at '" +
                                Cur().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<ParamItem> ParseItem() {
    ParamItem item;
    switch (Cur().kind) {
      case TokKind::kIdent:
        item.kind = ParamItem::Kind::kSymbol;
        item.symbol = Symbol::Name(Cur().text);
        Advance();
        return item;
      case TokKind::kQuoted:
      case TokKind::kNumber:
        item.kind = ParamItem::Kind::kSymbol;
        item.symbol = Symbol::Value(Cur().text);
        Advance();
        return item;
      case TokKind::kUnder:
        item.kind = ParamItem::Kind::kNull;
        Advance();
        return item;
      case TokKind::kStar:
        item.kind = ParamItem::Kind::kWildcard;
        item.wildcard_id = Cur().number;
        Advance();
        return item;
      case TokKind::kLParen: {
        Advance();
        TABULAR_ASSIGN_OR_RETURN(Param row, ParseSetOrItem());
        TABULAR_RETURN_NOT_OK(Expect(TokKind::kComma, "','"));
        TABULAR_ASSIGN_OR_RETURN(Param col, ParseSetOrItem());
        TABULAR_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
        item.kind = ParamItem::Kind::kPair;
        item.row = std::make_shared<Param>(std::move(row));
        item.col = std::make_shared<Param>(std::move(col));
        return item;
      }
      default:
        return Status::ParseError("expected a parameter item at '" +
                                  Cur().text + "'");
    }
  }

  /// A single-item parameter.
  Result<Param> ParseItemParam() {
    Param p;
    TABULAR_ASSIGN_OR_RETURN(ParamItem item, ParseItem());
    p.positive.push_back(std::move(item));
    return p;
  }

  /// `{ items (~ items)? }` or a bare single item.
  Result<Param> ParseSetOrItem() {
    if (!At(TokKind::kLBrace)) return ParseItemParam();
    Advance();
    Param p;
    if (!At(TokKind::kRBrace) && !At(TokKind::kTilde)) {
      for (;;) {
        TABULAR_ASSIGN_OR_RETURN(ParamItem item, ParseItem());
        p.positive.push_back(std::move(item));
        if (!At(TokKind::kComma)) break;
        Advance();
      }
    }
    if (At(TokKind::kTilde)) {
      Advance();
      for (;;) {
        TABULAR_ASSIGN_OR_RETURN(ParamItem item, ParseItem());
        p.negative.push_back(std::move(item));
        if (!At(TokKind::kComma)) break;
        Advance();
      }
    }
    TABULAR_RETURN_NOT_OK(Expect(TokKind::kRBrace, "'}'"));
    return p;
  }

  Result<Statement> ParseWhile() {
    Advance();  // while
    WhileLoop loop;
    TABULAR_ASSIGN_OR_RETURN(loop.condition, ParseItemParam());
    TABULAR_RETURN_NOT_OK(ExpectKeyword("do"));
    TABULAR_RETURN_NOT_OK(Expect(TokKind::kLBrace, "'{'"));
    while (!At(TokKind::kRBrace)) {
      if (At(TokKind::kEnd)) {
        return Status::ParseError("unterminated while body");
      }
      TABULAR_ASSIGN_OR_RETURN(Statement s, ParseOne());
      loop.body.push_back(std::move(s));
    }
    Advance();  // }
    Statement out;
    out.node = std::move(loop);
    return out;
  }

  Result<Statement> ParseAssignment() {
    Assignment a;
    TABULAR_ASSIGN_OR_RETURN(a.target, ParseItemParam());
    TABULAR_RETURN_NOT_OK(Expect(TokKind::kArrow, "'<-'"));
    if (!At(TokKind::kIdent)) {
      return Status::ParseError("expected operation name at '" + Cur().text +
                                "'");
    }
    const std::string op = Cur().text;
    Advance();
    if (op == "union") {
      a.op = OpKind::kUnion;
    } else if (op == "difference") {
      a.op = OpKind::kDifference;
    } else if (op == "intersection") {
      a.op = OpKind::kIntersection;
    } else if (op == "product") {
      a.op = OpKind::kProduct;
    } else if (op == "transpose") {
      a.op = OpKind::kTranspose;
    } else if (op == "rename") {
      a.op = OpKind::kRename;
      TABULAR_RETURN_NOT_OK(PushItem(&a));
      TABULAR_RETURN_NOT_OK(Expect(TokKind::kSlash, "'/'"));
      TABULAR_RETURN_NOT_OK(PushItem(&a));
    } else if (op == "project") {
      a.op = OpKind::kProject;
      TABULAR_RETURN_NOT_OK(PushSet(&a));
    } else if (op == "select" || op == "selectconst") {
      a.op = op == "select" ? OpKind::kSelect : OpKind::kSelectConst;
      TABULAR_RETURN_NOT_OK(PushItem(&a));
      TABULAR_RETURN_NOT_OK(Expect(TokKind::kEq, "'='"));
      TABULAR_RETURN_NOT_OK(PushItem(&a));
    } else if (op == "group") {
      a.op = OpKind::kGroup;
      TABULAR_RETURN_NOT_OK(ExpectKeyword("by"));
      TABULAR_RETURN_NOT_OK(PushSet(&a));
      TABULAR_RETURN_NOT_OK(ExpectKeyword("on"));
      TABULAR_RETURN_NOT_OK(PushSet(&a));
    } else if (op == "merge") {
      a.op = OpKind::kMerge;
      TABULAR_RETURN_NOT_OK(ExpectKeyword("on"));
      TABULAR_RETURN_NOT_OK(PushSet(&a));
      TABULAR_RETURN_NOT_OK(ExpectKeyword("by"));
      TABULAR_RETURN_NOT_OK(PushSet(&a));
    } else if (op == "split") {
      a.op = OpKind::kSplit;
      TABULAR_RETURN_NOT_OK(ExpectKeyword("on"));
      TABULAR_RETURN_NOT_OK(PushSet(&a));
    } else if (op == "collapse") {
      a.op = OpKind::kCollapse;
      TABULAR_RETURN_NOT_OK(ExpectKeyword("by"));
      TABULAR_RETURN_NOT_OK(PushSet(&a));
    } else if (op == "switch") {
      a.op = OpKind::kSwitch;
      TABULAR_RETURN_NOT_OK(PushItem(&a));
    } else if (op == "cleanup") {
      a.op = OpKind::kCleanUp;
      TABULAR_RETURN_NOT_OK(ExpectKeyword("by"));
      TABULAR_RETURN_NOT_OK(PushSet(&a));
      TABULAR_RETURN_NOT_OK(ExpectKeyword("on"));
      TABULAR_RETURN_NOT_OK(PushSet(&a));
    } else if (op == "purge") {
      a.op = OpKind::kPurge;
      TABULAR_RETURN_NOT_OK(ExpectKeyword("on"));
      TABULAR_RETURN_NOT_OK(PushSet(&a));
      TABULAR_RETURN_NOT_OK(ExpectKeyword("by"));
      TABULAR_RETURN_NOT_OK(PushSet(&a));
    } else if (op == "tuplenew") {
      a.op = OpKind::kTupleNew;
      TABULAR_RETURN_NOT_OK(PushItem(&a));
    } else if (op == "setnew") {
      a.op = OpKind::kSetNew;
      TABULAR_RETURN_NOT_OK(PushItem(&a));
    } else {
      return Status::ParseError("unknown operation '" + op + "'");
    }
    TABULAR_RETURN_NOT_OK(Expect(TokKind::kLParen, "'('"));
    if (!At(TokKind::kRParen)) {
      for (;;) {
        TABULAR_ASSIGN_OR_RETURN(Param arg, ParseItemParam());
        a.args.push_back(std::move(arg));
        if (!At(TokKind::kComma)) break;
        Advance();
      }
    }
    TABULAR_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
    TABULAR_RETURN_NOT_OK(Expect(TokKind::kSemi, "';'"));
    Statement out;
    out.node = std::move(a);
    return out;
  }

  Status PushItem(Assignment* a) {
    TABULAR_ASSIGN_OR_RETURN(Param p, ParseItemParam());
    a->params.push_back(std::move(p));
    return Status::OK();
  }

  Status PushSet(Assignment* a) {
    TABULAR_ASSIGN_OR_RETURN(Param p, ParseSetOrItem());
    a->params.push_back(std::move(p));
    return Status::OK();
  }

  std::vector<Token> toks_;
  size_t i_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view source) {
  Lexer lexer(source);
  TABULAR_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  Parser parser(std::move(tokens));
  return parser.ParseAll();
}

Result<Statement> ParseStatement(std::string_view source) {
  Lexer lexer(source);
  TABULAR_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  Parser parser(std::move(tokens));
  TABULAR_ASSIGN_OR_RETURN(Statement s, parser.ParseOne());
  if (!parser.AtEnd()) {
    return Status::ParseError("trailing input after statement");
  }
  return s;
}

}  // namespace tabular::lang
