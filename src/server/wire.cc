#include "server/wire.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace tabular::server {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

Status WireCursor::GetU8(uint8_t* v) {
  if (pos_ + 1 > data_.size()) {
    return Status::ParseError("truncated frame body (u8)");
  }
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status WireCursor::GetU32(uint32_t* v) {
  if (pos_ + 4 > data_.size()) {
    return Status::ParseError("truncated frame body (u32)");
  }
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *v = r;
  return Status::OK();
}

Status WireCursor::GetU64(uint64_t* v) {
  if (pos_ + 8 > data_.size()) {
    return Status::ParseError("truncated frame body (u64)");
  }
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *v = r;
  return Status::OK();
}

Status WireCursor::GetString(std::string* s) {
  uint32_t len = 0;
  TABULAR_RETURN_NOT_OK(GetU32(&len));
  if (pos_ + len > data_.size()) {
    return Status::ParseError("truncated frame body (string of " +
                              std::to_string(len) + " bytes)");
  }
  s->assign(data_.substr(pos_, len));
  pos_ += len;
  return Status::OK();
}

Status WireCursor::ExpectEnd() const {
  if (pos_ != data_.size()) {
    return Status::ParseError(std::to_string(data_.size() - pos_) +
                              " trailing byte(s) after message body");
  }
  return Status::OK();
}

namespace {

Status ExpectType(WireCursor* cur, MsgType want) {
  uint8_t type = 0;
  TABULAR_RETURN_NOT_OK(cur->GetU8(&type));
  if (type != static_cast<uint8_t>(want)) {
    return Status::ParseError("unexpected message type " +
                              std::to_string(type));
  }
  return Status::OK();
}

constexpr uint8_t kFlagCommit = 1;
constexpr uint8_t kFlagWantDump = 2;
constexpr uint8_t kFlagProfile = 4;
constexpr uint8_t kFlagRequestId = 8;
constexpr uint8_t kKnownRunFlags =
    kFlagCommit | kFlagWantDump | kFlagProfile | kFlagRequestId;

/// Marker byte introducing the optional RunResponse profile extension.
constexpr uint8_t kRunRespProfileExt = 1;

}  // namespace

std::string EncodePingRequest(const PingRequest& req) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kPing));
  if (req.has_features) PutU8(&out, req.features);
  return out;
}

Status DecodePingRequest(std::string_view payload, PingRequest* req) {
  WireCursor cur(payload);
  TABULAR_RETURN_NOT_OK(ExpectType(&cur, MsgType::kPing));
  if (cur.AtEnd()) {
    req->has_features = false;
    req->features = 0;
    return Status::OK();
  }
  req->has_features = true;
  TABULAR_RETURN_NOT_OK(cur.GetU8(&req->features));
  return cur.ExpectEnd();
}

std::string EncodePingResponse(const PingResponse& resp) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kOk));
  PutU8(&out, resp.features);
  PutU32(&out, resp.protocol_version);
  return out;
}

Status DecodePingResponse(std::string_view payload, PingResponse* resp) {
  WireCursor cur(payload);
  TABULAR_RETURN_NOT_OK(ExpectType(&cur, MsgType::kOk));
  if (cur.AtEnd()) {
    // A version-1 server's empty kOk: no features, no negotiation.
    resp->features = 0;
    resp->protocol_version = 1;
    return Status::OK();
  }
  TABULAR_RETURN_NOT_OK(cur.GetU8(&resp->features));
  TABULAR_RETURN_NOT_OK(cur.GetU32(&resp->protocol_version));
  return cur.ExpectEnd();
}

std::string EncodeRunRequest(const RunRequest& req) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kRun));
  uint8_t flags = 0;
  if (req.commit) flags |= kFlagCommit;
  if (req.want_dump) flags |= kFlagWantDump;
  if (req.profile) flags |= kFlagProfile;
  if (req.request_id != 0) flags |= kFlagRequestId;
  PutU8(&out, flags);
  PutString(&out, req.program);
  if (req.request_id != 0) PutU64(&out, req.request_id);
  return out;
}

Status DecodeRunRequest(std::string_view payload, RunRequest* req) {
  WireCursor cur(payload);
  TABULAR_RETURN_NOT_OK(ExpectType(&cur, MsgType::kRun));
  uint8_t flags = 0;
  TABULAR_RETURN_NOT_OK(cur.GetU8(&flags));
  if ((flags & ~kKnownRunFlags) != 0) {
    return Status::ParseError("unknown run flags " + std::to_string(flags));
  }
  req->commit = (flags & kFlagCommit) != 0;
  req->want_dump = (flags & kFlagWantDump) != 0;
  req->profile = (flags & kFlagProfile) != 0;
  TABULAR_RETURN_NOT_OK(cur.GetString(&req->program));
  req->request_id = 0;
  if ((flags & kFlagRequestId) != 0) {
    TABULAR_RETURN_NOT_OK(cur.GetU64(&req->request_id));
  }
  return cur.ExpectEnd();
}

std::string EncodeRunResponse(const RunResponse& resp) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kOk));
  PutU64(&out, resp.executed_version);
  PutU64(&out, resp.committed_version);
  PutU8(&out, resp.cache_hit ? 1 : 0);
  PutU64(&out, resp.steps);
  PutU32(&out, resp.rewrites_applied);
  PutU32(&out, resp.rewrites_rejected);
  PutString(&out, resp.dump);
  // The profile extension trails the version-1 body behind a marker byte
  // and is only emitted when the request carried kFlagProfile, so clients
  // that did not ask (version-1 clients cannot) get byte-identical frames.
  if (resp.has_profile) {
    PutU8(&out, kRunRespProfileExt);
    PutString(&out, resp.profile_text);
    PutString(&out, resp.counters_json);
  }
  return out;
}

Status DecodeRunResponse(std::string_view payload, RunResponse* resp) {
  WireCursor cur(payload);
  TABULAR_RETURN_NOT_OK(ExpectType(&cur, MsgType::kOk));
  TABULAR_RETURN_NOT_OK(cur.GetU64(&resp->executed_version));
  TABULAR_RETURN_NOT_OK(cur.GetU64(&resp->committed_version));
  uint8_t hit = 0;
  TABULAR_RETURN_NOT_OK(cur.GetU8(&hit));
  resp->cache_hit = hit != 0;
  TABULAR_RETURN_NOT_OK(cur.GetU64(&resp->steps));
  TABULAR_RETURN_NOT_OK(cur.GetU32(&resp->rewrites_applied));
  TABULAR_RETURN_NOT_OK(cur.GetU32(&resp->rewrites_rejected));
  TABULAR_RETURN_NOT_OK(cur.GetString(&resp->dump));
  resp->has_profile = false;
  resp->profile_text.clear();
  resp->counters_json.clear();
  if (!cur.AtEnd()) {
    uint8_t marker = 0;
    TABULAR_RETURN_NOT_OK(cur.GetU8(&marker));
    if (marker != kRunRespProfileExt) {
      return Status::ParseError("unknown run response extension " +
                                std::to_string(marker));
    }
    resp->has_profile = true;
    TABULAR_RETURN_NOT_OK(cur.GetString(&resp->profile_text));
    TABULAR_RETURN_NOT_OK(cur.GetString(&resp->counters_json));
  }
  return cur.ExpectEnd();
}

std::string EncodeSlowLogResponse(const SlowLogResponse& resp) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kOk));
  PutU64(&out, resp.threshold_micros);
  PutU64(&out, resp.dropped);
  PutU32(&out, static_cast<uint32_t>(resp.entries.size()));
  for (const obs::QueryLogEntry& e : resp.entries) {
    PutU64(&out, e.start_ns);
    PutU64(&out, e.request_id);
    PutU64(&out, e.session_id);
    PutU64(&out, e.program_hash);
    PutU64(&out, e.latency_us);
    PutU64(&out, e.rows_in);
    PutU64(&out, e.rows_out);
    PutU64(&out, e.snapshot_version);
    PutU32(&out, e.rewrites_applied);
    PutU8(&out, e.cache_hit ? 1 : 0);
    PutU8(&out, e.ok ? 1 : 0);
  }
  return out;
}

Status DecodeSlowLogResponse(std::string_view payload,
                             SlowLogResponse* resp) {
  WireCursor cur(payload);
  TABULAR_RETURN_NOT_OK(ExpectType(&cur, MsgType::kOk));
  TABULAR_RETURN_NOT_OK(cur.GetU64(&resp->threshold_micros));
  TABULAR_RETURN_NOT_OK(cur.GetU64(&resp->dropped));
  uint32_t count = 0;
  TABULAR_RETURN_NOT_OK(cur.GetU32(&count));
  // Each entry is at least 66 body bytes; a count that cannot fit in the
  // remaining payload is rejected before the reserve.
  if (count > kMaxFramePayload / 66) {
    return Status::ParseError("slow log entry count " +
                              std::to_string(count) + " out of range");
  }
  resp->entries.clear();
  resp->entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    obs::QueryLogEntry e;
    TABULAR_RETURN_NOT_OK(cur.GetU64(&e.start_ns));
    TABULAR_RETURN_NOT_OK(cur.GetU64(&e.request_id));
    TABULAR_RETURN_NOT_OK(cur.GetU64(&e.session_id));
    TABULAR_RETURN_NOT_OK(cur.GetU64(&e.program_hash));
    TABULAR_RETURN_NOT_OK(cur.GetU64(&e.latency_us));
    TABULAR_RETURN_NOT_OK(cur.GetU64(&e.rows_in));
    TABULAR_RETURN_NOT_OK(cur.GetU64(&e.rows_out));
    TABULAR_RETURN_NOT_OK(cur.GetU64(&e.snapshot_version));
    TABULAR_RETURN_NOT_OK(cur.GetU32(&e.rewrites_applied));
    uint8_t cache_hit = 0;
    uint8_t ok = 0;
    TABULAR_RETURN_NOT_OK(cur.GetU8(&cache_hit));
    TABULAR_RETURN_NOT_OK(cur.GetU8(&ok));
    e.cache_hit = cache_hit != 0;
    e.ok = ok != 0;
    resp->entries.push_back(e);
  }
  return cur.ExpectEnd();
}

std::string EncodeError(const ErrorResponse& err) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kError));
  PutU8(&out, static_cast<uint8_t>(err.code));
  PutString(&out, err.message);
  return out;
}

Status DecodeError(std::string_view payload, ErrorResponse* err) {
  WireCursor cur(payload);
  TABULAR_RETURN_NOT_OK(ExpectType(&cur, MsgType::kError));
  uint8_t code = 0;
  TABULAR_RETURN_NOT_OK(cur.GetU8(&code));
  if (code > static_cast<uint8_t>(StatusCode::kAdmissionRejected)) {
    return Status::ParseError("unknown status code " + std::to_string(code));
  }
  err->code = static_cast<StatusCode>(code);
  TABULAR_RETURN_NOT_OK(cur.GetString(&err->message));
  return cur.ExpectEnd();
}

std::string EncodeOkString(std::string_view body) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kOk));
  PutString(&out, body);
  return out;
}

std::string EncodeOkEmpty() {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kOk));
  return out;
}

std::string EncodeBareRequest(MsgType type) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(type));
  return out;
}

namespace {

/// write(2) the whole buffer, retrying short writes and EINTR. Sockets get
/// send(MSG_NOSIGNAL) so a dead peer yields EPIPE instead of SIGPIPE.
Status WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, data + off, len - off);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("write failed: ") +
                              std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `len` bytes. `*eof` is set when the peer closed before
/// the first byte; a close mid-buffer is a truncation error.
Status ReadExact(int fd, char* data, size_t len, bool* eof) {
  *eof = false;
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::read(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("read failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      if (off == 0) {
        *eof = true;
        return Status::OK();
      }
      return Status::ParseError("connection closed mid-frame (got " +
                                std::to_string(off) + " of " +
                                std::to_string(len) + " bytes)");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload of " +
                                   std::to_string(payload.size()) +
                                   " bytes out of range");
  }
  std::string buf;
  buf.reserve(4 + payload.size());
  PutU32(&buf, static_cast<uint32_t>(payload.size()));
  buf.append(payload);
  return WriteAll(fd, buf.data(), buf.size());
}

Result<std::optional<std::string>> ReadFrame(int fd) {
  char prefix[4];
  bool eof = false;
  TABULAR_RETURN_NOT_OK(ReadExact(fd, prefix, sizeof(prefix), &eof));
  if (eof) return std::optional<std::string>(std::nullopt);
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i])) << (8 * i);
  }
  if (len > kMaxFramePayload) {
    return Status::ParseError("frame length " + std::to_string(len) +
                              " out of range (max " +
                              std::to_string(kMaxFramePayload) + ")");
  }
  if (len == 0) return std::optional<std::string>(std::string());
  std::string payload(len, '\0');
  TABULAR_RETURN_NOT_OK(ReadExact(fd, payload.data(), len, &eof));
  if (eof) {
    return Status::ParseError("connection closed between prefix and payload");
  }
  return std::optional<std::string>(std::move(payload));
}

}  // namespace tabular::server
