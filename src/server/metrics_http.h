#ifndef TABULAR_SERVER_METRICS_HTTP_H_
#define TABULAR_SERVER_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "core/status.h"

namespace tabular::server {

/// Plain-HTTP sidecar for Prometheus scrapes: GET /metrics returns
/// `obs::RenderPrometheus()` as text/plain (exposition format 0.0.4), any
/// other path is a 404. It deliberately speaks just enough HTTP/1.0 for
/// `curl` and a Prometheus scraper — one short-lived connection per
/// scrape, response closed after the body — so tabulard's binary protocol
/// stays the only long-lived surface. Runs its own accept thread; scrapes
/// are handled inline (they are rare and cheap next to query traffic).
class MetricsHttpServer {
 public:
  /// Binds `host:port` (port 0 picks an ephemeral port) and starts
  /// serving.
  static Result<std::unique_ptr<MetricsHttpServer>> Start(
      const std::string& host, uint16_t port);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  uint16_t port() const { return port_; }

  /// Stops accepting, closes the socket, joins the thread. Idempotent.
  void Shutdown();

 private:
  MetricsHttpServer() = default;
  void AcceptLoop();
  void HandleConnection(int fd);

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopped_{false};
  std::thread accept_thread_;
};

}  // namespace tabular::server

#endif  // TABULAR_SERVER_METRICS_HTTP_H_
