#include "server/version.h"

#include <utility>

#include "obs/metrics.h"

namespace tabular::server {

VersionedDatabase::VersionedDatabase(core::TabularDatabase initial) {
  current_.version = 1;
  current_.db = std::make_shared<const core::TabularDatabase>(
      std::move(initial));
}

Snapshot VersionedDatabase::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

Result<uint64_t> VersionedDatabase::Commit(uint64_t base_version,
                                           core::TabularDatabase next) {
  static obs::Counter& commits = obs::GetCounter("server.commits");
  static obs::Counter& conflicts = obs::GetCounter("server.commit_conflicts");
  // The new version is materialized outside the critical section; the lock
  // covers only the compare and the pointer swap.
  auto published = std::make_shared<const core::TabularDatabase>(
      std::move(next));
  std::lock_guard<std::mutex> lock(mu_);
  if (current_.version != base_version) {
    ++conflicts_;
    conflicts.Add(1);
    return Status::Undefined(
        "commit conflict: base version " + std::to_string(base_version) +
        " is no longer current (now " + std::to_string(current_.version) +
        ")");
  }
  current_.version = base_version + 1;
  current_.db = std::move(published);
  commits.Add(1);
  return current_.version;
}

uint64_t VersionedDatabase::CommitCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_.version - 1;
}

uint64_t VersionedDatabase::ConflictCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conflicts_;
}

}  // namespace tabular::server
