#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <map>

#include "io/grid_format.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "server/wire.h"

namespace tabular::server {

namespace {

obs::Counter& RequestCounter() {
  static obs::Counter& c = obs::GetCounter("server.requests");
  return c;
}

obs::Counter& RequestErrorCounter() {
  static obs::Counter& c = obs::GetCounter("server.request_errors");
  return c;
}

/// Canonical latency source: bench_server and the Prometheus exposition
/// both derive p50/p99 from this histogram's buckets.
obs::Histogram& RequestLatency() {
  static obs::Histogram& h = obs::GetHistogram("server.request.latency");
  return h;
}

std::string JsonField(const char* key, uint64_t v, bool last = false) {
  return std::string("\"") + key + "\":" + std::to_string(v) +
         (last ? "" : ",");
}

/// Σ data rows over every table — the slow-log's rows_in/rows_out.
uint64_t TotalDataRows(const core::TabularDatabase& db) {
  uint64_t rows = 0;
  for (const core::Table& t : db.tables()) rows += t.height();
  return rows;
}

/// Peak data rows (and matching byte footprint) over the pools `p`
/// writes, measured on the post-run database. This is the observation
/// commensurate with `cost.peak_rows`/`peak_bytes` — both are
/// per-written-pool bounds — unlike the whole-database row total, which
/// would fold in resident tables the program never touched and, on any
/// database larger than the admission limit, permanently reject every
/// program after its first run.
void ObservedWrittenPoolPeaks(const CompiledProgram& p,
                              const core::TabularDatabase& db,
                              uint64_t* peak_rows, uint64_t* peak_bytes) {
  std::map<core::Symbol, std::pair<uint64_t, uint64_t>, core::SymbolLess>
      pools;
  for (const core::Table& t : db.tables()) {
    if (!p.writes_all_pools && p.written_pools.count(t.name()) == 0) {
      continue;
    }
    auto& [rows, bytes] = pools[t.name()];
    rows += t.height();
    bytes += static_cast<uint64_t>(t.height()) * t.width() *
             analysis::kCostHandleBytes;
  }
  *peak_rows = 0;
  *peak_bytes = 0;
  for (const auto& [name, rb] : pools) {
    *peak_rows = std::max(*peak_rows, rb.first);
    *peak_bytes = std::max(*peak_bytes, rb.second);
  }
}

/// Counter deltas across a profiled execution, as a JSON object keyed by
/// registry name ({"algebra.group.calls":5,...}). Under concurrent
/// sessions other requests' operator work leaks into the window; profile
/// counters are attribution hints, not an audit.
std::string CounterDeltaJson(
    const std::map<std::string, uint64_t>& before) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : obs::CounterEntries()) {
    auto it = before.find(name);
    const uint64_t prior = it == before.end() ? 0 : it->second;
    if (value == prior) continue;
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + name + "\":" + std::to_string(value - prior);
  }
  out += "}";
  return out;
}

std::map<std::string, uint64_t> CounterValues() {
  std::map<std::string, uint64_t> values;
  for (const auto& [name, value] : obs::CounterEntries()) {
    values[name] = value;
  }
  return values;
}

}  // namespace

std::string ServerStats::ToJson() const {
  std::string out = "{";
  out += JsonField("version", version);
  out += JsonField("commits", commits);
  out += JsonField("conflicts", conflicts);
  out += JsonField("sessions_active", sessions_active);
  out += JsonField("sessions_total", sessions_total);
  out += JsonField("requests", requests);
  out += JsonField("request_errors", request_errors);
  out += JsonField("cache_hits", cache_hits);
  out += JsonField("cache_misses", cache_misses);
  out += JsonField("cache_evictions", cache_evictions);
  out += JsonField("cache_size", cache_size, /*last=*/true);
  out += "}";
  return out;
}

Server::Server(ServerOptions options, core::TabularDatabase initial)
    : options_(std::move(options)),
      versions_(std::make_unique<VersionedDatabase>(std::move(initial))),
      cache_(options_.cache) {
  slow_log_.set_threshold_micros(options_.slow_query_micros);
}

Result<std::unique_ptr<Server>> Server::Start(core::TabularDatabase initial,
                                              ServerOptions options) {
  std::unique_ptr<Server> server(
      new Server(std::move(options), std::move(initial)));
  TABULAR_RETURN_NOT_OK(server->Listen());
  if (server->options_.metrics_port >= 0) {
    TABULAR_ASSIGN_OR_RETURN(
        server->metrics_http_,
        MetricsHttpServer::Start(
            server->options_.host,
            static_cast<uint16_t>(server->options_.metrics_port)));
  }
  server->accept_thread_ = std::thread([s = server.get()] {
    obs::SetCurrentThreadName("tabulard-accept");
    s->AcceptLoop();
  });
  return server;
}

Status Server::Listen() {
  if (::pipe(wake_pipe_) != 0) {
    return Status::Internal(std::string("pipe failed: ") +
                            std::strerror(errno));
  }
  ::fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return Status::Internal(std::string("socket failed: ") +
                              std::strerror(errno));
    }
    ::unlink(options_.unix_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::Internal("bind to " + options_.unix_path + " failed: " +
                              std::strerror(errno));
    }
    endpoint_ = "unix:" + options_.unix_path;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return Status::Internal(std::string("socket failed: ") +
                              std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad listen host: " + options_.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::Internal("bind to " + options_.host + ":" +
                              std::to_string(options_.port) + " failed: " +
                              std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
    endpoint_ = options_.host + ":" + std::to_string(port_);
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::Internal(std::string("listen failed: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

void Server::AcceptLoop() {
  static obs::Gauge& active_gauge = obs::GetGauge("server.sessions.active");
  static obs::Counter& opened = obs::GetCounter("server.sessions.opened");
  static obs::Counter& refused = obs::GetCounter("server.sessions.refused");

  // The loop runs until Shutdown() sets `stopped_`: a draining server must
  // keep *actively refusing* connections (accept + immediate close), or
  // late clients would sit in the listen backlog unanswered until the
  // listen fd closes. Once draining, the wake pipe stays readable forever,
  // so poll the listen fd alone on a short timeout instead of spinning.
  while (!stopped_.load(std::memory_order_acquire)) {
    const bool draining = ShutdownRequested();
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int rc = ::poll(fds, draining ? 1 : 2, /*timeout_ms=*/draining ? 50 : 250);
    if (rc < 0 && errno != EINTR) break;
    if (stopped_.load(std::memory_order_acquire)) break;
    if (rc <= 0 || (fds[0].revents & POLLIN) == 0) continue;

    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    if (ShutdownRequested() ||
        sessions_active_.load(std::memory_order_relaxed) >=
            options_.max_sessions) {
      // Draining or over capacity: refuse by closing immediately.
      refused.Add(1);
      ::close(fd);
      continue;
    }

    // Session ids are 1-based: the id tags every trace span and slow-log
    // entry the session produces, and 0 is the "unknown" sentinel.
    const uint64_t session_id =
        sessions_total_.fetch_add(1, std::memory_order_relaxed) + 1;
    sessions_active_.fetch_add(1, std::memory_order_relaxed);
    opened.Add(1);
    active_gauge.Set(
        static_cast<int64_t>(sessions_active_.load(std::memory_order_relaxed)));

    std::lock_guard<std::mutex> lock(mu_);
    // Reap finished sessions so long-lived servers don't accumulate slots.
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if ((*it)->done) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    auto slot = std::make_unique<SessionSlot>();
    SessionSlot* raw = slot.get();
    raw->fd = fd;
    sessions_.push_back(std::move(slot));
    raw->thread = std::thread([this, raw, session_id] {
      obs::SetCurrentThreadName("tabulard-session");
      SessionLoop(raw->fd, session_id);
      ::close(raw->fd);
      sessions_active_.fetch_sub(1, std::memory_order_relaxed);
      active_gauge.Set(static_cast<int64_t>(
          sessions_active_.load(std::memory_order_relaxed)));
      std::lock_guard<std::mutex> done_lock(mu_);
      raw->done = true;
    });
  }
}

void Server::SessionLoop(int fd, uint64_t session_id) {
  while (true) {
    // Idle wait: wake on request bytes, on peer close, or on shutdown (the
    // wake pipe stays readable once signaled, so every session sees it).
    pollfd fds[2] = {{fd, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int rc = ::poll(fds, 2, /*timeout_ms=*/250);
    if (rc < 0 && errno != EINTR) return;
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
      // No request pending: a draining server closes idle sessions.
      if (ShutdownRequested()) return;
      continue;
    }

    Result<std::optional<std::string>> frame = ReadFrame(fd);
    if (!frame.ok()) {
      // Framing violation (oversized length, mid-frame close): report once
      // when the socket still works, then drop the connection.
      ErrorResponse err{frame.status().code(), frame.status().message()};
      (void)WriteFrame(fd, EncodeError(err));
      return;
    }
    if (!frame->has_value()) return;  // clean EOF

    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    const uint64_t t0 = obs::TraceNowNs();
    obs::QueryLogEntry audit;
    std::string response = HandleRequest(**frame, session_id, &audit);
    const uint64_t latency_us = (obs::TraceNowNs() - t0) / 1000;
    RequestLatency().Record(latency_us);
    // A run request set the program hash (FNV-1a is never 0); finish the
    // audit record with what only this loop knows and offer it to the
    // slow-query log.
    if (audit.program_hash != 0) {
      audit.start_ns = t0;
      audit.session_id = session_id;
      audit.latency_us = latency_us;
      slow_log_.Observe(audit);
    }
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    if (!WriteFrame(fd, response).ok()) return;
    // Drain semantics: the request that was in flight when shutdown was
    // requested gets its response, then the session closes.
    if (ShutdownRequested()) return;
  }
}

std::string Server::HandleRequest(const std::string& payload,
                                  uint64_t session_id,
                                  obs::QueryLogEntry* audit) {
  // The root span of the request: everything the handler does (interpreter
  // and kernel spans included) nests under it in the exported trace, and
  // its args identify which session's track the request ran on.
  obs::TraceSpan root("server.request", "server");
  root.Arg("session", session_id);
  requests_.fetch_add(1, std::memory_order_relaxed);
  RequestCounter().Add(1);

  auto error = [this](StatusCode code, std::string message) {
    request_errors_.fetch_add(1, std::memory_order_relaxed);
    RequestErrorCounter().Add(1);
    return EncodeError(ErrorResponse{code, std::move(message)});
  };

  if (payload.empty()) {
    return error(StatusCode::kParseError, "empty payload");
  }
  switch (static_cast<MsgType>(static_cast<uint8_t>(payload[0]))) {
    case MsgType::kPing: {
      PingRequest ping;
      Status parsed = DecodePingRequest(payload, &ping);
      if (!parsed.ok()) return error(parsed.code(), parsed.message());
      if (!ping.has_features) return EncodeOkEmpty();  // version-1 ping
      PingResponse pong;
      pong.features =
          static_cast<uint8_t>(ping.features & options_.feature_mask);
      pong.protocol_version = kProtocolVersion;
      return EncodePingResponse(pong);
    }
    case MsgType::kRun:
      return HandleRun(payload, session_id, &root, audit);
    case MsgType::kSlowLog: {
      SlowLogResponse resp;
      resp.threshold_micros = slow_log_.threshold_micros();
      resp.entries = slow_log_.Drain();
      resp.dropped = slow_log_.dropped();
      return EncodeSlowLogResponse(resp);
    }
    case MsgType::kMetricsProm:
      return EncodeOkString(obs::RenderPrometheus());
    case MsgType::kDump: {
      Snapshot snap = versions_->Current();
      std::string out;
      PutU8(&out, static_cast<uint8_t>(MsgType::kOk));
      PutU64(&out, snap.version);
      PutString(&out, io::SerializeDatabase(*snap.db));
      return out;
    }
    case MsgType::kTables: {
      Snapshot snap = versions_->Current();
      std::string names;
      for (core::Symbol nm : snap.db->TableNames()) {
        names += nm.ToString();
        names += '\n';
      }
      return EncodeOkString(names);
    }
    case MsgType::kStats:
      return EncodeOkString(Stats().ToJson());
    case MsgType::kMetrics:
      return EncodeOkString(obs::MetricsJson());
    case MsgType::kShutdown:
      RequestShutdown();
      return EncodeOkEmpty();
    case MsgType::kOk:
    case MsgType::kError:
      return error(StatusCode::kParseError,
                   "response message type in a request");
  }
  return error(StatusCode::kParseError,
               "unknown message type " +
                   std::to_string(static_cast<uint8_t>(payload[0])));
}

std::string Server::HandleRun(const std::string& payload,
                              uint64_t session_id, obs::TraceSpan* root,
                              obs::QueryLogEntry* audit) {
  (void)session_id;  // the session loop stamps it onto `audit`
  TABULAR_TRACE_SPAN("server.run", "server");
  auto error = [this, audit](StatusCode code, std::string message) {
    request_errors_.fetch_add(1, std::memory_order_relaxed);
    RequestErrorCounter().Add(1);
    audit->ok = false;
    return EncodeError(ErrorResponse{code, std::move(message)});
  };

  RunRequest req;
  Status parsed = DecodeRunRequest(payload, &req);
  if (!parsed.ok()) return error(parsed.code(), parsed.message());
  // From here on the request is auditable: the hash marks `audit` live.
  audit->program_hash = obs::Fnv1a64(req.program);
  audit->request_id = req.request_id;
  if (req.request_id != 0) root->Arg("request", req.request_id);

  // Pin a snapshot: everything below reads this immutable version, no
  // matter how many commits land concurrently.
  Snapshot snap = versions_->Current();
  bool cache_hit = false;
  std::shared_ptr<const CompiledProgram> compiled =
      cache_.Get(req.program, *snap.db, &cache_hit);
  root->Arg("snapshot", snap.version);
  root->Arg("cache_hit", cache_hit ? 1 : 0);
  audit->snapshot_version = snap.version;
  audit->cache_hit = cache_hit;
  audit->rows_in = TotalDataRows(*snap.db);
  if (!compiled->front_end.ok()) {
    return error(compiled->front_end.code(), compiled->front_end.message());
  }
  audit->rewrites_applied =
      static_cast<uint32_t>(compiled->optimize_stats.applied);

  // Admission control: a pure lookup on the cached cost summary — no
  // analysis runs on the hot path. Rejection happens before the private
  // copy below, so an over-budget program costs the server nothing but
  // the compile (which negative-caches like any other front-end verdict
  // would not — admission is re-checked per request, since limits and
  // observed-rows feedback both move).
  if (options_.max_est_rows > 0 || options_.max_est_bytes > 0) {
    static obs::Counter& admitted =
        obs::GetCounter("server.admission.admitted");
    static obs::Counter& rejected =
        obs::GetCounter("server.admission.rejected");
    static obs::Counter& unbounded =
        obs::GetCounter("server.admission.unbounded");
    const analysis::CostReport& cost = compiled->cost;
    if (cost.unbounded()) {
      unbounded.Add(1);
      rejected.Add(1);
      return error(StatusCode::kAdmissionRejected,
                   "statement " + cost.unbounded_path +
                       ": statically unbounded resource use");
    }
    const uint64_t est_rows = compiled->EffectiveRowEstimate();
    if (options_.max_est_rows > 0 && est_rows > options_.max_est_rows) {
      rejected.Add(1);
      return error(StatusCode::kAdmissionRejected,
                   "statement " + cost.peak_rows_path + ": estimated rows " +
                       analysis::FormatCost(est_rows) + " exceed limit " +
                       std::to_string(options_.max_est_rows));
    }
    const uint64_t est_bytes = compiled->EffectiveByteEstimate();
    if (options_.max_est_bytes > 0 && est_bytes > options_.max_est_bytes) {
      rejected.Add(1);
      return error(StatusCode::kAdmissionRejected,
                   "statement " + cost.peak_bytes_path +
                       ": estimated bytes " +
                       analysis::FormatCost(est_bytes) + " exceed limit " +
                       std::to_string(options_.max_est_bytes));
    }
    admitted.Add(1);
  }

  // Execute against a private copy. The front end already ran (analysis
  // and certified rewrites are part of the cached compile), so the
  // interpreter runs the compiled form directly.
  core::TabularDatabase work = *snap.db;
  lang::InterpreterOptions interp = options_.interp;
  interp.analyze_first = false;
  interp.optimize = false;
  interp.profile = req.profile;
  std::map<std::string, uint64_t> counters_before;
  if (req.profile) counters_before = CounterValues();
  lang::Interpreter interpreter(interp);
  Status run = interpreter.Run(compiled->executable(), &work);
  if (!run.ok()) {
    // No commit happens on failure: under snapshot isolation a failed
    // program is invisible — partial results die with `work`.
    return error(run.code(), run.message());
  }

  RunResponse resp;
  resp.executed_version = snap.version;
  resp.cache_hit = cache_hit;
  resp.steps = interpreter.steps_executed();
  resp.rewrites_applied =
      static_cast<uint32_t>(compiled->optimize_stats.applied);
  resp.rewrites_rejected =
      static_cast<uint32_t>(compiled->optimize_stats.rejected);
  if (req.profile) {
    resp.has_profile = true;
    resp.profile_text = obs::RenderProfile(interpreter.profile());
    resp.counters_json = CounterDeltaJson(counters_before);
  }
  audit->rows_out = TotalDataRows(work);
  // Feed the run's true output size back into the cache entry: admission's
  // effective estimates tighten toward observation (adaptive re-planning
  // without recompiling). Measured over the pools the program writes, the
  // same quantity the static peaks bound.
  uint64_t observed_rows = 0;
  uint64_t observed_bytes = 0;
  ObservedWrittenPoolPeaks(*compiled, work, &observed_rows, &observed_bytes);
  compiled->RecordObservedRows(observed_rows);
  compiled->RecordObservedBytes(observed_bytes);
  if (req.want_dump) resp.dump = io::SerializeDatabase(work);
  if (req.commit) {
    Result<uint64_t> committed =
        versions_->Commit(snap.version, std::move(work));
    if (!committed.ok()) {
      return error(committed.status().code(), committed.status().message());
    }
    resp.committed_version = *committed;
  }
  return EncodeRunResponse(resp);
}

void Server::RequestShutdown() {
  bool expected = false;
  if (!shutdown_requested_.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return;
  }
  // Wake every poll()er; the pipe stays readable, so late pollers see it
  // too. The write end is non-blocking — a full pipe is already "signaled".
  char byte = 1;
  (void)!::write(wake_pipe_[1], &byte, 1);
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_cv_.notify_all();
}

void Server::WaitForShutdownRequest() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [this] { return ShutdownRequested(); });
}

void Server::Shutdown() {
  RequestShutdown();
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_http_ != nullptr) metrics_http_->Shutdown();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());

  // Drain: sessions finish their in-flight request and exit on their own;
  // after the deadline, force-unblock whatever is left. shutdown(2) (not
  // close) so the fd number stays owned by the session thread.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(
          static_cast<int64_t>(options_.drain_seconds * 1000));
  while (sessions_active_.load(std::memory_order_relaxed) > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& slot : sessions_) {
      if (!slot->done) ::shutdown(slot->fd, SHUT_RDWR);
    }
  }
  std::vector<std::unique_ptr<SessionSlot>> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.swap(sessions_);
  }
  for (auto& slot : sessions) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) {
      ::close(wake_pipe_[i]);
      wake_pipe_[i] = -1;
    }
  }
}

Server::~Server() { Shutdown(); }

ServerStats Server::Stats() const {
  ServerStats s;
  Snapshot snap = versions_->Current();
  s.version = snap.version;
  s.commits = versions_->CommitCount();
  s.conflicts = versions_->ConflictCount();
  s.sessions_active = sessions_active_.load(std::memory_order_relaxed);
  s.sessions_total = sessions_total_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.request_errors = request_errors_.load(std::memory_order_relaxed);
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_evictions = cache_.evictions();
  s.cache_size = cache_.size();
  return s;
}

}  // namespace tabular::server
