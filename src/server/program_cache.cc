#include "server/program_cache.h"

#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "analysis/analyzer.h"
#include "lang/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tabular::server {

using analysis::AbstractDatabase;
using analysis::CardInterval;
using analysis::TableShape;

namespace {

/// =0 stays exact, ≥1 widens to [1,∞), anything else to ⊤ — the three
/// classes a fingerprint distinguishes. Always a superset of the input, so
/// the coarsened shape admits every database it fingerprints.
CardInterval Coarsen(const CardInterval& c) {
  if (c.hi == 0) return CardInterval::Exact(0);
  if (c.lo >= 1) return CardInterval::Range(1, CardInterval::kInf);
  return CardInterval::Top();
}

/// log₂ size class of a pool's data-row count: 0 for empty, otherwise
/// floor(log₂ rows) + 1, so counts within one class differ by at most a
/// factor of two.
uint64_t RowBucket(uint64_t rows) {
  uint64_t bucket = 0;
  while (rows != 0) {
    ++bucket;
    rows >>= 1;
  }
  return bucket;
}

/// Pool names assigned anywhere in `stmts` (recursively through while
/// bodies). Drop targets are excluded: a drop produces no rows, so its
/// pool says nothing about the program's output size.
void CollectWrittenPools(const std::vector<lang::Statement>& stmts,
                         core::SymbolSet* pools, bool* universal) {
  for (const lang::Statement& s : stmts) {
    if (const auto* a = std::get_if<lang::Assignment>(&s.node)) {
      analysis::CollectParamNames(a->target, pools, universal);
    } else if (const auto* w = std::get_if<lang::WhileLoop>(&s.node)) {
      CollectWrittenPools(w->body, pools, universal);
    }
  }
}

}  // namespace

AbstractDatabase CoarsenedSchema(const core::TabularDatabase& db) {
  AbstractDatabase exact = AbstractDatabase::FromDatabase(db);
  for (auto& [name, shape] : exact.tables) {
    shape.row_card = Coarsen(shape.row_card);
    shape.col_card = Coarsen(shape.col_card);
    shape.count = Coarsen(shape.count);
  }
  return exact;
}

std::string SchemaFingerprint(const core::TabularDatabase& db) {
  // The coarse classes carry analysis soundness (see CoarsenedSchema);
  // the appended row-size bucket only splits cache entries so that the
  // admission cost estimate attached to an entry is computed against a
  // database within one doubling of every pool it is reused for.
  const AbstractDatabase exact = AbstractDatabase::FromDatabase(db);
  std::string out;
  for (const auto& [name, shape] : exact.tables) {
    TableShape coarse = shape;
    coarse.row_card = Coarsen(shape.row_card);
    coarse.col_card = Coarsen(shape.col_card);
    coarse.count = Coarsen(shape.count);
    out += name.ToString();
    out += '=';
    out += coarse.ToString();
    out += coarse.certain ? "!" : "?";
    out += '#';
    out += std::to_string(
        RowBucket(CardInterval::SatMul(shape.count.hi, shape.row_card.hi)));
    out += '\n';
  }
  return out;
}

ProgramCache::ProgramCache(Options options) : options_(options) {}

std::shared_ptr<const CompiledProgram> ProgramCache::Compile(
    const std::string& text, const core::TabularDatabase& db) const {
  TABULAR_TRACE_SPAN("program_cache.compile", "server");
  auto compiled = std::make_shared<CompiledProgram>();
  Result<lang::Program> parsed = lang::ParseProgram(text);
  if (!parsed.ok()) {
    compiled->front_end = parsed.status();
    return compiled;
  }
  compiled->parsed = std::move(*parsed);
  compiled->optimized = compiled->parsed;

  // Analyze against the coarsened image (see CoarsenedSchema): any error it
  // reports is definite for *every* database with this fingerprint, so the
  // rejection may be cached alongside positive compiles.
  const AbstractDatabase coarse = CoarsenedSchema(db);
  analysis::AnalysisResult analyzed =
      analysis::AnalyzeProgram(compiled->parsed, coarse);
  for (const analysis::Diagnostic& d : analyzed.diagnostics) {
    if (d.severity == analysis::Severity::kError) {
      compiled->front_end = Status::InvalidArgument(
          "statement " + d.path + ": " + d.message);
      return compiled;
    }
    compiled->warnings.push_back(d);
  }

  if (options_.optimize) {
    lang::OptimizerOptions opt;
    opt.validate_rewrites = options_.validate_rewrites;
    compiled->optimized = lang::OptimizeProgram(
        compiled->parsed, coarse, opt, &compiled->optimize_stats);
  }

  // Cost the final plan against the *exact* image of the compiling
  // snapshot: the coarsened image's ≥1 row classes have no finite upper
  // bound, so admission-grade estimates need the real shapes. Databases
  // that reuse this entry match the compiling one per pool up to the
  // fingerprint's row-size class (one doubling); the observed feedback on
  // CompiledProgram covers the rest.
  compiled->cost = analysis::EstimateCost(compiled->optimized,
                                          AbstractDatabase::FromDatabase(db));
  CollectWrittenPools(compiled->optimized.statements,
                      &compiled->written_pools, &compiled->writes_all_pools);
  return compiled;
}

std::shared_ptr<const CompiledProgram> ProgramCache::Get(
    const std::string& text, const core::TabularDatabase& db, bool* hit) {
  static obs::Counter& hits = obs::GetCounter("server.program_cache.hits");
  static obs::Counter& misses =
      obs::GetCounter("server.program_cache.misses");
  static obs::Counter& evictions =
      obs::GetCounter("server.program_cache.evictions");
  static obs::Gauge& size_gauge = obs::GetGauge("server.program_cache.size");

  if (options_.capacity == 0) {
    misses.Add(1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++misses_;
    }
    if (hit != nullptr) *hit = false;
    return Compile(text, db);
  }

  const std::string key = SchemaFingerprint(db) + '\0' + text;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      ++hits_;
      hits.Add(1);
      if (hit != nullptr) *hit = true;
      return it->second.program;
    }
  }

  // Compile outside the lock: a slow front-end must not stall sessions
  // hitting other entries. Two sessions racing on the same new key both
  // compile; the loser's insert finds the key present and reuses it.
  std::shared_ptr<const CompiledProgram> compiled = Compile(text, db);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    ++hits_;
    hits.Add(1);
    if (hit != nullptr) *hit = true;
    return it->second.program;
  }
  ++misses_;
  misses.Add(1);
  if (hit != nullptr) *hit = false;
  lru_.push_front(key);
  entries_[key] = Entry{compiled, lru_.begin()};
  while (entries_.size() > options_.capacity) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
    evictions.Add(1);
  }
  size_gauge.Set(static_cast<int64_t>(entries_.size()));
  return compiled;
}

size_t ProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t ProgramCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ProgramCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t ProgramCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace tabular::server
