#ifndef TABULAR_SERVER_CLIENT_H_
#define TABULAR_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/status.h"
#include "server/wire.h"

namespace tabular::server {

/// Blocking client for one `tabulard` session: a connected socket plus
/// request/response framing. One outstanding request at a time; a Client
/// is not thread-safe (use one per thread, as the bench does).
class Client {
 public:
  static Result<Client> ConnectTcp(const std::string& host, uint16_t port);
  static Result<Client> ConnectUnix(const std::string& path);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Liveness check.
  Status Ping();

  /// Executes `program` on the server. With `commit` (the default) the
  /// result becomes the new current version; without it the run is a
  /// read-only query against the pinned snapshot. Server-side failures
  /// (parse, analysis, runtime, commit conflict) come back as the error
  /// Status with the server's code.
  Result<RunResponse> Run(const std::string& program, bool commit = true,
                          bool want_dump = false);

  /// The current database in grid format, plus its version.
  struct Dump {
    uint64_t version = 0;
    std::string database;
  };
  Result<Dump> DumpDatabase();

  /// Newline-separated table names of the current version.
  Result<std::string> Tables();
  /// Server statistics as JSON (see ServerStats::ToJson).
  Result<std::string> Stats();
  /// The server's obs metrics registry as JSON.
  Result<std::string> Metrics();
  /// Asks the server to shut down gracefully (it still answers this).
  Status Shutdown();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  /// Sends `payload` and reads one response payload.
  Result<std::string> RoundTrip(const std::string& payload);
  /// Decodes a bare-Ok-or-error response.
  Status ExpectOk(const std::string& payload);
  /// Turns a kError payload into its Status.
  static Status ErrorStatus(const std::string& payload);

  int fd_ = -1;
};

}  // namespace tabular::server

#endif  // TABULAR_SERVER_CLIENT_H_
