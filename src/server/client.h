#ifndef TABULAR_SERVER_CLIENT_H_
#define TABULAR_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/status.h"
#include "server/wire.h"

namespace tabular::server {

/// Blocking client for one `tabulard` session: a connected socket plus
/// request/response framing. One outstanding request at a time; a Client
/// is not thread-safe (use one per thread, as the bench does).
class Client {
 public:
  static Result<Client> ConnectTcp(const std::string& host, uint16_t port);
  static Result<Client> ConnectUnix(const std::string& path);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Liveness check (the version-1 empty-body ping; works on any server).
  Status Ping();

  /// Feature negotiation: offers the client's full feature set over kPing
  /// and records what the server granted. Called lazily by every method
  /// that depends on a feature; explicit calls are only needed to inspect
  /// the result. Against a version-1 server this degrades to a plain ping
  /// and grants nothing.
  Result<PingResponse> Negotiate();
  /// Features granted by the last negotiation (0 before one happened).
  uint8_t features() const { return negotiated_.features; }
  /// Server protocol version from the last negotiation (0 before one).
  uint32_t protocol_version() const { return negotiated_.protocol_version; }

  /// Executes `program` on the server. With `commit` (the default) the
  /// result becomes the new current version; without it the run is a
  /// read-only query against the pinned snapshot. Server-side failures
  /// (parse, analysis, runtime, commit conflict) come back as the error
  /// Status with the server's code. When the server granted
  /// kFeatureRequestIds, each run carries a client-assigned request id
  /// (a session-local counter) that the server's trace spans and slow-log
  /// entries echo back.
  Result<RunResponse> Run(const std::string& program, bool commit = true,
                          bool want_dump = false);

  /// Run with server-side instrumentation: the response carries the
  /// rendered profile tree and the per-operator counter deltas as JSON.
  /// Requires the server to grant kFeatureProfile.
  Result<RunResponse> Profile(const std::string& program,
                              bool commit = false);

  /// The current database in grid format, plus its version.
  struct Dump {
    uint64_t version = 0;
    std::string database;
  };
  Result<Dump> DumpDatabase();

  /// Newline-separated table names of the current version.
  Result<std::string> Tables();
  /// Server statistics as JSON (see ServerStats::ToJson).
  Result<std::string> Stats();
  /// The server's obs metrics registry as JSON.
  Result<std::string> Metrics();
  /// The server's metrics in Prometheus text exposition format. Requires
  /// kFeaturePrometheus.
  Result<std::string> MetricsProm();
  /// Drains the server's slow-query log. Requires kFeatureSlowLog.
  Result<SlowLogResponse> SlowLog();
  /// Asks the server to shut down gracefully (it still answers this).
  Status Shutdown();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  /// Sends `payload` and reads one response payload.
  Result<std::string> RoundTrip(const std::string& payload);
  /// Decodes a bare-Ok-or-error response.
  Status ExpectOk(const std::string& payload);
  /// Turns a kError payload into its Status.
  static Status ErrorStatus(const std::string& payload);
  /// Negotiates once per connection; verifies `required` was granted.
  Status EnsureNegotiated(uint8_t required);
  Result<RunResponse> RunInternal(const std::string& program, bool commit,
                                  bool want_dump, bool profile);

  int fd_ = -1;
  bool negotiation_done_ = false;
  PingResponse negotiated_{0, 0};
  uint64_t next_request_id_ = 1;
};

}  // namespace tabular::server

#endif  // TABULAR_SERVER_CLIENT_H_
