#ifndef TABULAR_SERVER_VERSION_H_
#define TABULAR_SERVER_VERSION_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "core/database.h"
#include "core/status.h"

namespace tabular::server {

/// A pinned, immutable database version. Copyable; the underlying
/// `TabularDatabase` is shared and never mutated after publication, so a
/// snapshot may be read from any thread for as long as the holder keeps it
/// alive — long after newer versions have been committed.
struct Snapshot {
  uint64_t version = 0;
  std::shared_ptr<const core::TabularDatabase> db;
};

/// Copy-on-write version store: the concurrency spine of `tabulard`.
///
/// The paper's model treats a database as a *value* that TA programs map to
/// new values, which makes multi-version concurrency the natural story:
/// every committed state is a complete immutable `TabularDatabase`; the
/// store holds a pointer to the newest one. Readers pin a `Snapshot` and
/// never block — `Current()` is a pointer copy under a mutex held for O(1)
/// work, never across a writer's program execution. Writers execute against
/// their own snapshot's copy and then `Commit` the result with
/// first-committer-wins optimistic concurrency: the swap succeeds only when
/// the base version is still current, so commits serialize into a linear
/// version history and a reader can never observe a half-applied program.
class VersionedDatabase {
 public:
  /// Version 1 is the initial database.
  explicit VersionedDatabase(core::TabularDatabase initial);

  /// The newest committed version. Never blocks on writers.
  Snapshot Current() const;

  /// Installs `next` as the new current version iff `base_version` is still
  /// current (the snapshot-isolation write rule). On success returns the
  /// new version number; on a lost race returns `kUndefined` ("commit
  /// conflict") and the store is unchanged — the caller may re-execute
  /// against a fresh snapshot and retry.
  Result<uint64_t> Commit(uint64_t base_version, core::TabularDatabase next);

  /// Total successful commits (== Current().version - 1).
  uint64_t CommitCount() const;
  /// Total commits refused because the base version was stale.
  uint64_t ConflictCount() const;

 private:
  mutable std::mutex mu_;  // guards `current_` pointer swaps only
  Snapshot current_;
  uint64_t conflicts_ = 0;
};

}  // namespace tabular::server

#endif  // TABULAR_SERVER_VERSION_H_
