#include "server/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/exposition.h"
#include "obs/trace.h"

namespace tabular::server {

Result<std::unique_ptr<MetricsHttpServer>> MetricsHttpServer::Start(
    const std::string& host, uint16_t port) {
  std::unique_ptr<MetricsHttpServer> server(new MetricsHttpServer());
  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (server->listen_fd_ < 0) {
    return Status::Internal(std::string("metrics socket failed: ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad metrics host: " + host);
  }
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::Internal("metrics bind to " + host + ":" +
                            std::to_string(port) + " failed: " +
                            std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                &len);
  server->port_ = ntohs(bound.sin_port);
  if (::listen(server->listen_fd_, 16) != 0) {
    return Status::Internal(std::string("metrics listen failed: ") +
                            std::strerror(errno));
  }
  server->accept_thread_ = std::thread([s = server.get()] {
    obs::SetCurrentThreadName("tabulard-metrics");
    s->AcceptLoop();
  });
  return server;
}

void MetricsHttpServer::AcceptLoop() {
  while (!stopped_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc < 0 && errno != EINTR) return;
    if (stopped_.load(std::memory_order_acquire)) return;
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::HandleConnection(int fd) {
  // A scrape request fits in one read in practice; keep reading until the
  // header terminator or a small cap so a slow writer cannot wedge us.
  std::string request;
  char buf[2048];
  while (request.size() < 16 * 1024 &&
         request.find("\r\n\r\n") == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, /*timeout_ms=*/1000);
    if (rc <= 0) return;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    request.append(buf, static_cast<size_t>(n));
  }

  const bool is_get = request.rfind("GET ", 0) == 0;
  const size_t path_start = 4;
  const size_t path_end = request.find(' ', path_start);
  std::string path = is_get && path_end != std::string::npos
                         ? request.substr(path_start, path_end - path_start)
                         : "";

  std::string body;
  std::string status_line;
  std::string content_type = "text/plain; charset=utf-8";
  if (!is_get) {
    status_line = "HTTP/1.0 405 Method Not Allowed";
    body = "only GET is supported\n";
  } else if (path == "/metrics") {
    status_line = "HTTP/1.0 200 OK";
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = obs::RenderPrometheus();
  } else {
    status_line = "HTTP/1.0 404 Not Found";
    body = "try /metrics\n";
  }

  std::string response = status_line + "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " +
                         std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  size_t off = 0;
  while (off < response.size()) {
    ssize_t n = ::send(fd, response.data() + off, response.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

void MetricsHttpServer::Shutdown() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

MetricsHttpServer::~MetricsHttpServer() { Shutdown(); }

}  // namespace tabular::server
