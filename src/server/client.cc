#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tabular::server {

Result<Client> Client::ConnectTcp(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Internal("connect to " + host + ":" +
                                 std::to_string(port) + " failed: " +
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  return Client(fd);
}

Result<Client> Client::ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Internal("connect to " + path + " failed: " +
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      negotiation_done_(other.negotiation_done_),
      negotiated_(other.negotiated_),
      next_request_id_(other.next_request_id_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    negotiation_done_ = other.negotiation_done_;
    negotiated_ = other.negotiated_;
    next_request_id_ = other.next_request_id_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::ErrorStatus(const std::string& payload) {
  ErrorResponse err;
  TABULAR_RETURN_NOT_OK(DecodeError(payload, &err));
  return Status(err.code, err.message);
}

Result<std::string> Client::RoundTrip(const std::string& payload) {
  if (fd_ < 0) return Status::Internal("client is not connected");
  TABULAR_RETURN_NOT_OK(WriteFrame(fd_, payload));
  Result<std::optional<std::string>> frame = ReadFrame(fd_);
  if (!frame.ok()) return frame.status();
  if (!frame->has_value()) {
    return Status::Internal("server closed the connection");
  }
  return std::move(**frame);
}

Status Client::ExpectOk(const std::string& payload) {
  if (payload.empty()) return Status::ParseError("empty response");
  if (payload[0] == static_cast<char>(MsgType::kOk)) return Status::OK();
  return ErrorStatus(payload);
}

Status Client::Ping() {
  TABULAR_ASSIGN_OR_RETURN(
      std::string resp, RoundTrip(EncodeBareRequest(MsgType::kPing)));
  return ExpectOk(resp);
}

Result<PingResponse> Client::Negotiate() {
  PingRequest req;
  req.has_features = true;
  req.features = kServerFeatures;
  TABULAR_ASSIGN_OR_RETURN(std::string resp,
                           RoundTrip(EncodePingRequest(req)));
  if (!resp.empty() && resp[0] == static_cast<char>(MsgType::kError)) {
    return ErrorStatus(resp);
  }
  PingResponse pong;
  TABULAR_RETURN_NOT_OK(DecodePingResponse(resp, &pong));
  negotiated_ = pong;
  negotiation_done_ = true;
  return pong;
}

Status Client::EnsureNegotiated(uint8_t required) {
  if (!negotiation_done_) {
    TABULAR_RETURN_NOT_OK(Negotiate().status());
  }
  if ((negotiated_.features & required) != required) {
    return Status::InvalidArgument(
        "server (protocol version " +
        std::to_string(negotiated_.protocol_version) +
        ") did not grant the required feature bits " +
        std::to_string(required));
  }
  return Status::OK();
}

Result<RunResponse> Client::RunInternal(const std::string& program,
                                        bool commit, bool want_dump,
                                        bool profile) {
  RunRequest req;
  req.program = program;
  req.commit = commit;
  req.want_dump = want_dump;
  req.profile = profile;
  if ((negotiated_.features & kFeatureRequestIds) != 0) {
    req.request_id = next_request_id_++;
  }
  TABULAR_ASSIGN_OR_RETURN(std::string resp,
                           RoundTrip(EncodeRunRequest(req)));
  if (!resp.empty() && resp[0] == static_cast<char>(MsgType::kError)) {
    return ErrorStatus(resp);
  }
  RunResponse out;
  TABULAR_RETURN_NOT_OK(DecodeRunResponse(resp, &out));
  return out;
}

Result<RunResponse> Client::Run(const std::string& program, bool commit,
                                bool want_dump) {
  // Negotiate lazily so runs carry request ids when the server supports
  // them; a failed negotiation (e.g. a half-dead socket) surfaces here.
  if (!negotiation_done_) {
    TABULAR_RETURN_NOT_OK(Negotiate().status());
  }
  return RunInternal(program, commit, want_dump, /*profile=*/false);
}

Result<RunResponse> Client::Profile(const std::string& program,
                                    bool commit) {
  TABULAR_RETURN_NOT_OK(EnsureNegotiated(kFeatureProfile));
  return RunInternal(program, commit, /*want_dump=*/false,
                     /*profile=*/true);
}

Result<Client::Dump> Client::DumpDatabase() {
  TABULAR_ASSIGN_OR_RETURN(
      std::string resp, RoundTrip(EncodeBareRequest(MsgType::kDump)));
  if (!resp.empty() && resp[0] == static_cast<char>(MsgType::kError)) {
    return ErrorStatus(resp);
  }
  WireCursor cur(resp);
  uint8_t type = 0;
  TABULAR_RETURN_NOT_OK(cur.GetU8(&type));
  Dump dump;
  TABULAR_RETURN_NOT_OK(cur.GetU64(&dump.version));
  TABULAR_RETURN_NOT_OK(cur.GetString(&dump.database));
  TABULAR_RETURN_NOT_OK(cur.ExpectEnd());
  return dump;
}

namespace {

Result<std::string> DecodeOkString(const std::string& payload) {
  WireCursor cur(payload);
  uint8_t type = 0;
  TABULAR_RETURN_NOT_OK(cur.GetU8(&type));
  std::string body;
  TABULAR_RETURN_NOT_OK(cur.GetString(&body));
  TABULAR_RETURN_NOT_OK(cur.ExpectEnd());
  return body;
}

}  // namespace

Result<std::string> Client::Tables() {
  TABULAR_ASSIGN_OR_RETURN(
      std::string resp, RoundTrip(EncodeBareRequest(MsgType::kTables)));
  if (!resp.empty() && resp[0] == static_cast<char>(MsgType::kError)) {
    return ErrorStatus(resp);
  }
  return DecodeOkString(resp);
}

Result<std::string> Client::Stats() {
  TABULAR_ASSIGN_OR_RETURN(
      std::string resp, RoundTrip(EncodeBareRequest(MsgType::kStats)));
  if (!resp.empty() && resp[0] == static_cast<char>(MsgType::kError)) {
    return ErrorStatus(resp);
  }
  return DecodeOkString(resp);
}

Result<std::string> Client::Metrics() {
  TABULAR_ASSIGN_OR_RETURN(
      std::string resp, RoundTrip(EncodeBareRequest(MsgType::kMetrics)));
  if (!resp.empty() && resp[0] == static_cast<char>(MsgType::kError)) {
    return ErrorStatus(resp);
  }
  return DecodeOkString(resp);
}

Result<std::string> Client::MetricsProm() {
  TABULAR_RETURN_NOT_OK(EnsureNegotiated(kFeaturePrometheus));
  TABULAR_ASSIGN_OR_RETURN(
      std::string resp, RoundTrip(EncodeBareRequest(MsgType::kMetricsProm)));
  if (!resp.empty() && resp[0] == static_cast<char>(MsgType::kError)) {
    return ErrorStatus(resp);
  }
  return DecodeOkString(resp);
}

Result<SlowLogResponse> Client::SlowLog() {
  TABULAR_RETURN_NOT_OK(EnsureNegotiated(kFeatureSlowLog));
  TABULAR_ASSIGN_OR_RETURN(
      std::string resp, RoundTrip(EncodeBareRequest(MsgType::kSlowLog)));
  if (!resp.empty() && resp[0] == static_cast<char>(MsgType::kError)) {
    return ErrorStatus(resp);
  }
  SlowLogResponse out;
  TABULAR_RETURN_NOT_OK(DecodeSlowLogResponse(resp, &out));
  return out;
}

Status Client::Shutdown() {
  TABULAR_ASSIGN_OR_RETURN(
      std::string resp, RoundTrip(EncodeBareRequest(MsgType::kShutdown)));
  return ExpectOk(resp);
}

}  // namespace tabular::server
