#ifndef TABULAR_SERVER_WIRE_H_
#define TABULAR_SERVER_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "obs/query_log.h"

namespace tabular::server {

/// The `tabulard` wire protocol: length-prefixed binary frames over a
/// byte stream (localhost TCP or a unix socket).
///
///   frame   := u32le payload_length, payload
///   payload := u8 message_type, body
///
/// The framing layer is payload-agnostic: `payload_length` may be any value
/// in [0, `kMaxFramePayload`], and a zero-length frame round-trips through
/// `WriteFrame`/`ReadFrame` symmetrically (both sides used to disagree on
/// whether an empty frame was legal). A larger prefix is rejected before
/// any allocation (a 4-byte frame must not commandeer 4 GiB of buffer).
/// The *message* layer is stricter: a conforming payload starts with its
/// type byte, so decoders and the request dispatcher reject empty payloads
/// as a parse error. Integers are little-endian; strings are u32le length +
/// bytes. Requests flow client → server; every request yields exactly one
/// `kOk` or `kError` response.

constexpr uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB

/// Protocol revision. Version 2 adds feature negotiation over kPing (a
/// client feature byte in the ping body, echoed back with the negotiated
/// set), request-scoped run flags (profile, client-assigned request ids),
/// and the kSlowLog/kMetricsProm requests. Version-1 peers interoperate
/// unchanged: their empty pings get the legacy empty kOk, their run frames
/// carry no new flags, and their responses are byte-identical.
constexpr uint32_t kProtocolVersion = 2;

/// Capability bits negotiated over kPing. A version-1 peer implicitly has
/// none. The server answers with the intersection of the client's bits and
/// its own mask, so either side can be configured down for compatibility
/// testing.
constexpr uint8_t kFeatureRequestIds = 1;  ///< kRun may carry a request id
constexpr uint8_t kFeatureProfile = 2;     ///< kRun may ask for a profile
constexpr uint8_t kFeatureSlowLog = 4;     ///< kSlowLog is understood
constexpr uint8_t kFeaturePrometheus = 8;  ///< kMetricsProm is understood
constexpr uint8_t kServerFeatures = kFeatureRequestIds | kFeatureProfile |
                                    kFeatureSlowLog | kFeaturePrometheus;

enum class MsgType : uint8_t {
  // Requests.
  kPing = 1,      ///< body: empty | u8 features   → Ok: empty | Negotiation
  kRun = 2,       ///< body: RunRequest            → Ok: RunResponse
  kDump = 3,      ///< body: empty                 → Ok: u64 version, str db
  kTables = 4,    ///< body: empty                 → Ok: str (one name/line)
  kStats = 5,     ///< body: empty                 → Ok: str JSON
  kMetrics = 6,   ///< body: empty                 → Ok: str JSON
  kShutdown = 7,  ///< body: empty                 → Ok: empty; server drains
  kSlowLog = 8,   ///< body: empty                 → Ok: SlowLogResponse
  kMetricsProm = 9,  ///< body: empty              → Ok: str Prometheus text

  // Responses.
  kOk = 64,
  kError = 65,
};

/// kPing body (version ≥ 2): the features the client can use. The legacy
/// empty body means "no features".
struct PingRequest {
  bool has_features = false;  ///< false: version-1 empty-body ping
  uint8_t features = 0;
};

/// kOk answer to a feature-carrying ping: the negotiated feature set (an
/// intersection — never more than the client offered) plus the server's
/// protocol revision. Legacy pings get the legacy empty kOk instead.
struct PingResponse {
  uint8_t features = 0;
  uint32_t protocol_version = kProtocolVersion;
};

/// Execute a TA program on the server.
struct RunRequest {
  std::string program;    ///< surface-syntax program text
  bool commit = true;     ///< install the result as a new version
  bool want_dump = false; ///< return the resulting database's grid text
  bool profile = false;   ///< run instrumented; response carries the profile
  uint64_t request_id = 0;  ///< client-assigned id (0: none; not sent)
};

struct RunResponse {
  uint64_t executed_version = 0;   ///< snapshot the program ran against
  uint64_t committed_version = 0;  ///< new version, 0 when not committed
  bool cache_hit = false;          ///< compiled form served from cache
  uint64_t steps = 0;              ///< interpreter instantiations
  uint32_t rewrites_applied = 0;   ///< certified rewrites in the cached form
  uint32_t rewrites_rejected = 0;
  std::string dump;                ///< grid text when `want_dump`, else ""
  bool has_profile = false;        ///< trailing profile extension present
  std::string profile_text;        ///< obs::RenderProfile tree
  std::string counters_json;       ///< per-operator OpCounters deltas (JSON)
};

/// kOk answer to kSlowLog: the slow-query ring drained oldest-first.
struct SlowLogResponse {
  uint64_t threshold_micros = 0;  ///< obs::QueryLog::kDisabled when off
  uint64_t dropped = 0;           ///< entries lost to ring wrap, ever
  std::vector<obs::QueryLogEntry> entries;
};

struct ErrorResponse {
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

// -- Body encoding -----------------------------------------------------------

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutString(std::string* out, std::string_view s);

/// Sequential reader over a payload body; every getter fails with
/// `kParseError` on truncation instead of reading past the end.
class WireCursor {
 public:
  explicit WireCursor(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetString(std::string* s);
  bool AtEnd() const { return pos_ == data_.size(); }
  /// kParseError unless the whole body was consumed (trailing garbage).
  Status ExpectEnd() const;

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Full payloads (type byte + body). Decoders check the type byte.
///
/// Backward compatibility is structural: every version-2 addition is either
/// behind a run-flag bit (request id), an optional trailing extension that
/// is only emitted when the request asked for it (profile), or a new
/// message type — so a version-1 encoder's bytes still decode, and a
/// version-1 decoder never sees bytes it cannot parse.
std::string EncodePingRequest(const PingRequest& req);
Status DecodePingRequest(std::string_view payload, PingRequest* req);
std::string EncodePingResponse(const PingResponse& resp);
/// Accepts both the negotiated form and the legacy empty kOk (which
/// decodes as features = 0, protocol_version = 1).
Status DecodePingResponse(std::string_view payload, PingResponse* resp);
std::string EncodeRunRequest(const RunRequest& req);
Status DecodeRunRequest(std::string_view payload, RunRequest* req);
std::string EncodeRunResponse(const RunResponse& resp);
Status DecodeRunResponse(std::string_view payload, RunResponse* resp);
std::string EncodeSlowLogResponse(const SlowLogResponse& resp);
Status DecodeSlowLogResponse(std::string_view payload, SlowLogResponse* resp);
std::string EncodeError(const ErrorResponse& err);
Status DecodeError(std::string_view payload, ErrorResponse* err);
/// kOk with a raw string body (Dump/Tables/Stats/Metrics responses).
std::string EncodeOkString(std::string_view body);
/// An empty kOk (Ping/Shutdown responses).
std::string EncodeOkEmpty();
/// A bodyless request payload (Ping, Dump, Tables, Stats, Metrics,
/// Shutdown).
std::string EncodeBareRequest(MsgType type);

// -- Framed stream I/O -------------------------------------------------------

/// Writes one frame (length prefix + payload) to `fd`, handling partial
/// writes and EINTR; SIGPIPE is suppressed (MSG_NOSIGNAL on sockets).
Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame's payload from `fd`.
///   * nullopt            — clean EOF at a frame boundary (peer closed)
///   * kParseError        — truncated prefix/payload or oversized length
///   * kInternal          — socket error
Result<std::optional<std::string>> ReadFrame(int fd);

}  // namespace tabular::server

#endif  // TABULAR_SERVER_WIRE_H_
