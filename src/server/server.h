#ifndef TABULAR_SERVER_SERVER_H_
#define TABULAR_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/status.h"
#include "lang/interpreter.h"
#include "server/program_cache.h"
#include "server/version.h"

namespace tabular::server {

struct ServerOptions {
  /// Listen on a unix socket at this path when non-empty; otherwise on
  /// localhost TCP.
  std::string unix_path;
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with `port()`.
  uint16_t port = 0;
  /// Compiled-program cache size (entries) and front-end behavior.
  ProgramCache::Options cache;
  /// Resource guards applied to every request's execution.
  lang::InterpreterOptions interp;
  /// Seconds Shutdown() waits for in-flight requests before force-closing
  /// the remaining connections.
  double drain_seconds = 5.0;
  /// Refuse connections beyond this many concurrent sessions.
  size_t max_sessions = 1024;
};

/// Point-in-time server statistics (the Stats request renders these as
/// JSON).
struct ServerStats {
  uint64_t version = 0;
  uint64_t commits = 0;
  uint64_t conflicts = 0;
  uint64_t sessions_active = 0;
  uint64_t sessions_total = 0;
  uint64_t requests = 0;
  uint64_t request_errors = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_size = 0;

  std::string ToJson() const;
};

/// `tabulard`'s engine: a concurrent multi-session TA server executing
/// programs under snapshot isolation (see `VersionedDatabase`) with a
/// compiled-program cache (see `ProgramCache`). One thread per session;
/// each request pins the newest version, executes the cached compiled form
/// against a private copy, and — for commits — installs the result with an
/// atomic first-committer-wins swap. Readers never wait on writers, and a
/// failed program never publishes partial state: the version store only
/// ever receives fully-executed databases.
class Server {
 public:
  /// Binds, listens, and spawns the accept thread.
  static Result<std::unique_ptr<Server>> Start(core::TabularDatabase initial,
                                               ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bound TCP port (0 when listening on a unix socket).
  uint16_t port() const { return port_; }
  /// "unix:<path>" or "<host>:<port>".
  const std::string& endpoint() const { return endpoint_; }

  /// Flags the server to shut down: new connections are refused from this
  /// point on. Non-blocking; safe from any thread, including session
  /// handlers (the Shutdown request) and the daemon's signal-watcher.
  void RequestShutdown();

  /// True once RequestShutdown has been called.
  bool ShutdownRequested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  /// Blocks until RequestShutdown is called (the daemon's main loop).
  void WaitForShutdownRequest();

  /// Graceful stop: refuses new sessions, drains in-flight requests for up
  /// to `drain_seconds`, force-closes whatever remains, joins every
  /// thread. Implies RequestShutdown; idempotent. Must not be called from
  /// a session thread.
  void Shutdown();

  ServerStats Stats() const;
  const VersionedDatabase& versions() const { return *versions_; }
  ProgramCache& cache() { return cache_; }

 private:
  Server(ServerOptions options, core::TabularDatabase initial);
  Status Listen();
  void AcceptLoop();
  void SessionLoop(int fd);
  /// One request frame → one response payload. Never fails: protocol and
  /// execution errors become kError payloads.
  std::string HandleRequest(const std::string& payload);
  std::string HandleRun(const std::string& payload);

  ServerOptions options_;
  std::unique_ptr<VersionedDatabase> versions_;
  ProgramCache cache_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::string endpoint_;
  /// Wakes poll()ers (accept loop, idle sessions) on shutdown.
  int wake_pipe_[2] = {-1, -1};

  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> sessions_active_{0};
  std::atomic<uint64_t> sessions_total_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> request_errors_{0};
  std::atomic<uint64_t> in_flight_{0};

  mutable std::mutex mu_;
  std::condition_variable shutdown_cv_;
  std::thread accept_thread_;
  struct SessionSlot {
    std::thread thread;
    int fd = -1;
    bool done = false;
  };
  std::vector<std::unique_ptr<SessionSlot>> sessions_;  // guarded by mu_
};

}  // namespace tabular::server

#endif  // TABULAR_SERVER_SERVER_H_
