#ifndef TABULAR_SERVER_SERVER_H_
#define TABULAR_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/status.h"
#include "lang/interpreter.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "server/metrics_http.h"
#include "server/program_cache.h"
#include "server/version.h"
#include "server/wire.h"

namespace tabular::server {

struct ServerOptions {
  /// Listen on a unix socket at this path when non-empty; otherwise on
  /// localhost TCP.
  std::string unix_path;
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with `port()`.
  uint16_t port = 0;
  /// Compiled-program cache size (entries) and front-end behavior.
  ProgramCache::Options cache;
  /// Resource guards applied to every request's execution.
  lang::InterpreterOptions interp;
  /// Seconds Shutdown() waits for in-flight requests before force-closing
  /// the remaining connections.
  double drain_seconds = 5.0;
  /// Refuse connections beyond this many concurrent sessions.
  size_t max_sessions = 1024;
  /// Requests at least this slow (wall micros) enter the slow-query log;
  /// `obs::QueryLog::kDisabled` turns the log off. The daemon maps
  /// `--slow-ms` / `TABULAR_SLOW_MS` onto this.
  uint64_t slow_query_micros = 100000;
  /// Features this server negotiates (intersected with the client's ping
  /// byte). Defaults to everything; tests set 0 to impersonate a
  /// version-1 server.
  uint8_t feature_mask = kServerFeatures;
  /// Prometheus /metrics HTTP port: -1 disables the endpoint, 0 picks an
  /// ephemeral port (read it back with `metrics_port()`).
  int metrics_port = -1;
  /// Static admission control (0 = limit off). When either limit is set,
  /// every Run request's cached cost summary is checked before execution:
  /// a statically unbounded program, an effective row estimate above
  /// `max_est_rows`, or a peak byte estimate above `max_est_bytes` is
  /// rejected with `StatusCode::kAdmissionRejected` naming the offending
  /// statement. The daemon maps `--max-est-rows` / `TABULAR_ADMIT_MAX_ROWS`
  /// (and the `-bytes` pair) onto these.
  uint64_t max_est_rows = 0;
  uint64_t max_est_bytes = 0;
};

/// Point-in-time server statistics (the Stats request renders these as
/// JSON).
struct ServerStats {
  uint64_t version = 0;
  uint64_t commits = 0;
  uint64_t conflicts = 0;
  uint64_t sessions_active = 0;
  uint64_t sessions_total = 0;
  uint64_t requests = 0;
  uint64_t request_errors = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_size = 0;

  std::string ToJson() const;
};

/// `tabulard`'s engine: a concurrent multi-session TA server executing
/// programs under snapshot isolation (see `VersionedDatabase`) with a
/// compiled-program cache (see `ProgramCache`). One thread per session;
/// each request pins the newest version, executes the cached compiled form
/// against a private copy, and — for commits — installs the result with an
/// atomic first-committer-wins swap. Readers never wait on writers, and a
/// failed program never publishes partial state: the version store only
/// ever receives fully-executed databases.
class Server {
 public:
  /// Binds, listens, and spawns the accept thread.
  static Result<std::unique_ptr<Server>> Start(core::TabularDatabase initial,
                                               ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bound TCP port (0 when listening on a unix socket).
  uint16_t port() const { return port_; }
  /// "unix:<path>" or "<host>:<port>".
  const std::string& endpoint() const { return endpoint_; }
  /// Bound Prometheus /metrics HTTP port; -1 when the endpoint is off.
  int metrics_port() const {
    return metrics_http_ == nullptr ? -1 : metrics_http_->port();
  }

  /// Flags the server to shut down: new connections are refused from this
  /// point on. Non-blocking; safe from any thread, including session
  /// handlers (the Shutdown request) and the daemon's signal-watcher.
  void RequestShutdown();

  /// True once RequestShutdown has been called.
  bool ShutdownRequested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  /// Blocks until RequestShutdown is called (the daemon's main loop).
  void WaitForShutdownRequest();

  /// Graceful stop: refuses new sessions, drains in-flight requests for up
  /// to `drain_seconds`, force-closes whatever remains, joins every
  /// thread. Implies RequestShutdown; idempotent. Must not be called from
  /// a session thread.
  void Shutdown();

  ServerStats Stats() const;
  const VersionedDatabase& versions() const { return *versions_; }
  ProgramCache& cache() { return cache_; }
  obs::QueryLog& slow_log() { return slow_log_; }

 private:
  Server(ServerOptions options, core::TabularDatabase initial);
  Status Listen();
  void AcceptLoop();
  void SessionLoop(int fd, uint64_t session_id);
  /// One request frame → one response payload. Never fails: protocol and
  /// execution errors become kError payloads. Run requests fill `audit`
  /// (everything but the latency, which the session loop measures) for the
  /// slow-query log.
  std::string HandleRequest(const std::string& payload, uint64_t session_id,
                            obs::QueryLogEntry* audit);
  std::string HandleRun(const std::string& payload, uint64_t session_id,
                        obs::TraceSpan* root, obs::QueryLogEntry* audit);

  ServerOptions options_;
  std::unique_ptr<VersionedDatabase> versions_;
  ProgramCache cache_;
  obs::QueryLog slow_log_;
  std::unique_ptr<MetricsHttpServer> metrics_http_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::string endpoint_;
  /// Wakes poll()ers (accept loop, idle sessions) on shutdown.
  int wake_pipe_[2] = {-1, -1};

  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> sessions_active_{0};
  std::atomic<uint64_t> sessions_total_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> request_errors_{0};
  std::atomic<uint64_t> in_flight_{0};

  mutable std::mutex mu_;
  std::condition_variable shutdown_cv_;
  std::thread accept_thread_;
  struct SessionSlot {
    std::thread thread;
    int fd = -1;
    bool done = false;
  };
  std::vector<std::unique_ptr<SessionSlot>> sessions_;  // guarded by mu_
};

}  // namespace tabular::server

#endif  // TABULAR_SERVER_SERVER_H_
