#ifndef TABULAR_SERVER_PROGRAM_CACHE_H_
#define TABULAR_SERVER_PROGRAM_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/cost.h"
#include "analysis/diagnostics.h"
#include "analysis/shape.h"
#include "core/database.h"
#include "core/status.h"
#include "core/symbol.h"
#include "lang/ast.h"
#include "lang/optimizer.h"

namespace tabular::server {

/// The front-end result for one (program text, schema shape) pair: parsed,
/// analyzed, and optimizer-certified once, then reused by every session
/// whose database matches the shape — the analogue of a prepared statement
/// plus MariaDB's table-definition cache.
struct CompiledProgram {
  /// Non-OK when the parse failed or the analyzer proved the program
  /// misbehaves on *every* database of this shape. Executing such an entry
  /// returns this status without running anything (negative caching).
  Status front_end;
  lang::Program parsed;
  /// The validator-certified rewritten form (== `parsed` when optimization
  /// was off or found nothing).
  lang::Program optimized;
  lang::OptimizeStats optimize_stats;
  /// Analyzer warnings (errors land in `front_end`).
  std::vector<analysis::Diagnostic> warnings;

  /// Static cost summary of `optimized` against the *exact* shapes of the
  /// database that first compiled this entry (not the coarsened cache
  /// image, whose [1,∞) row classes would make every estimate ∞). Later
  /// databases sharing the fingerprint agree with the compiling one per
  /// pool up to the fingerprint's row-size class (one doubling — see
  /// `SchemaFingerprint`), and the observed feedback below corrects the
  /// residual drift. Admission control is therefore a pure lookup on the
  /// hot path.
  analysis::CostReport cost;

  /// Pool names the program assigns to (targets of assignment statements,
  /// recursively through while bodies), collected from `optimized` at
  /// compile time. `writes_all_pools` is set when some target is a
  /// wildcard/pair parameter that can denote any name. The session loop
  /// uses this to measure the program's *own* output after a run — the
  /// observation fed back below must be commensurate with `cost.peak_rows`
  /// (a per-written-pool bound), not the whole-database row total, which
  /// would fold in resident tables the program never touched.
  core::SymbolSet written_pools;
  bool writes_all_pools = false;

  /// Adaptive feedback: the largest per-written-pool data-row count (and
  /// matching byte footprint) any successful run of this entry has
  /// produced (0 = never run). Written lock-free by session threads after
  /// execution, read by admission.
  mutable std::atomic<uint64_t> observed_rows{0};
  mutable std::atomic<uint64_t> observed_bytes{0};

  void RecordObservedRows(uint64_t rows) const {
    RecordMax(&observed_rows, rows);
  }
  void RecordObservedBytes(uint64_t bytes) const {
    RecordMax(&observed_bytes, bytes);
  }

  /// The row bound admission compares against `--max-est-rows`: the static
  /// peak, corrected by observation once the entry has run. Observation
  /// can shrink an over-estimate (down to twice the largest observed run
  /// — re-planning headroom) but never below what was actually seen, and
  /// an unbounded static verdict is never overridden.
  uint64_t EffectiveRowEstimate() const {
    return Blend(cost.peak_rows,
                 observed_rows.load(std::memory_order_relaxed));
  }

  /// Same blend for `--max-est-bytes` against the written-pool byte
  /// footprint observed after each run.
  uint64_t EffectiveByteEstimate() const {
    return Blend(cost.peak_bytes,
                 observed_bytes.load(std::memory_order_relaxed));
  }

  const lang::Program& executable() const { return optimized; }

 private:
  static void RecordMax(std::atomic<uint64_t>* slot, uint64_t v) {
    uint64_t seen = slot->load(std::memory_order_relaxed);
    while (v > seen &&
           !slot->compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  static uint64_t Blend(uint64_t stat, uint64_t seen) {
    if (stat == analysis::CardInterval::kInf) return stat;
    if (seen == 0) return stat;
    return std::max(
        std::min(stat, analysis::CardInterval::SatMul(seen, 2)), seen);
  }
};

/// The abstract image a cached compile is certified against: the exact
/// shapes of `db` with every cardinality interval coarsened to one of
/// three classes — =0, ≥1, or unknown. Two databases with equal
/// `SchemaFingerprint` coarsen to the *same* abstraction, and each is
/// admitted by it (its exact intervals lie within the coarsened ones), so
/// analysis errors and certified rewrites proved against the coarsened
/// image are sound for every database that hits the cache entry.
analysis::AbstractDatabase CoarsenedSchema(const core::TabularDatabase& db);

/// Deterministic rendering of `CoarsenedSchema(db)` plus each pool's
/// row-count size class (log₂ bucket) — the schema half of the cache key.
/// Stable across runs (symbol order, not interning order). The size class
/// keeps the cached cost estimate honest: databases sharing an entry can
/// differ per pool by at most one doubling, so an admission estimate
/// computed against the first-compiling database is stale by a bounded
/// factor (and the observed feedback on `CompiledProgram` closes the
/// rest).
std::string SchemaFingerprint(const core::TabularDatabase& db);

/// Thread-safe LRU cache of compiled programs keyed by
/// (program text, `SchemaFingerprint`). Hits and misses feed the
/// `server.program_cache.{hits,misses,evictions}` counters and the
/// `server.program_cache.size` gauge.
class ProgramCache {
 public:
  struct Options {
    size_t capacity = 128;        ///< entries; 0 disables caching
    bool optimize = true;         ///< run the certified rewrite engine
    bool validate_rewrites = true;
  };

  explicit ProgramCache(Options options);
  ProgramCache() : ProgramCache(Options()) {}

  /// Looks up (or compiles and inserts) the entry for `text` against the
  /// shape of `db`. The returned pointer is immutable and safe to use
  /// concurrently with further cache operations. `hit`, if non-null, is
  /// set to whether the entry was served from cache.
  std::shared_ptr<const CompiledProgram> Get(const std::string& text,
                                             const core::TabularDatabase& db,
                                             bool* hit = nullptr);

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  std::shared_ptr<const CompiledProgram> Compile(
      const std::string& text, const core::TabularDatabase& db) const;

  Options options_;
  mutable std::mutex mu_;
  /// MRU-first key list; the map holds iterators into it.
  std::list<std::string> lru_;
  struct Entry {
    std::shared_ptr<const CompiledProgram> program;
    std::list<std::string>::iterator lru_pos;
  };
  std::map<std::string, Entry> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace tabular::server

#endif  // TABULAR_SERVER_PROGRAM_CACHE_H_
