#include "exec/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tabular::exec {

namespace {

/// Set on any thread currently executing inside a parallel region (the
/// caller during a fork/join and every worker); nested ParallelFor calls on
/// such a thread degrade to the serial path instead of deadlocking on the
/// single-job pool.
thread_local bool t_in_parallel_region = false;

size_t DefaultThreads() {
  if (const char* env = std::getenv("TABULAR_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::atomic<size_t> g_thread_override{0};

/// A lazily grown pool of persistent workers executing one fork/join job at
/// a time. Tasks are claimed with an atomic counter, which load-balances
/// without affecting results: a task's index alone determines what it
/// writes.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    // Leaked singleton: workers are parked in a condition wait at process
    // exit and die with the process (Google style for non-trivially
    // destructible statics).
    static ThreadPool* pool = new ThreadPool();
    return *pool;
  }

  /// Runs fn(0) .. fn(tasks - 1) on up to `threads` threads (caller
  /// included) and returns when all calls finished. Callers serialize.
  void Run(size_t threads, size_t tasks,
           const std::function<void(size_t)>& fn) {
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    Job job;
    job.fn = &fn;
    job.tasks = tasks;
    const size_t helpers = std::min(threads - 1, tasks - 1);
    EnsureWorkers(helpers);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      tickets_ = helpers;
      active_ = 1;  // The caller.
    }
    cv_work_.notify_all();
    t_in_parallel_region = true;
    Execute(job);
    t_in_parallel_region = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      tickets_ = 0;  // Late-waking workers must not join a finished job.
      --active_;
      cv_done_.wait(lock, [&] { return active_ == 0; });
      job_ = nullptr;
    }
  }

 private:
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t tasks = 0;
    std::atomic<size_t> next{0};
  };

  static void Execute(Job& job) {
    for (;;) {
      size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.tasks) break;
      (*job.fn)(i);
    }
  }

  void EnsureWorkers(size_t want) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (workers_.size() < want) {
      const size_t index = workers_.size();
      workers_.emplace_back([this, index] { WorkerLoop(index); });
    }
  }

  void WorkerLoop(size_t index) {
    obs::SetCurrentThreadName("tabular-worker-" + std::to_string(index));
    t_in_parallel_region = true;
    for (;;) {
      Job* job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_work_.wait(lock, [&] { return tickets_ > 0; });
        --tickets_;
        ++active_;
        job = job_;
      }
      Execute(*job);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--active_ == 0) cv_done_.notify_one();
      }
    }
  }

  std::mutex run_mutex_;  // One job at a time; concurrent callers queue.

  std::mutex mutex_;  // Guards everything below.
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  size_t tickets_ = 0;  // Worker join permits for the current job.
  size_t active_ = 0;   // Threads currently inside Execute().
};

}  // namespace

size_t Threads() {
  size_t n = g_thread_override.load(std::memory_order_relaxed);
  if (n > 0) return n;
  static const size_t resolved = DefaultThreads();
  return resolved;
}

void SetThreads(size_t n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

ScopedThreads::ScopedThreads(size_t n)
    : previous_(g_thread_override.load(std::memory_order_relaxed)) {
  SetThreads(n);
}

ScopedThreads::~ScopedThreads() { SetThreads(previous_); }

void ParallelFor(size_t n, size_t min_parallel,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t threads = Threads();
  if (threads <= 1 || n < min_parallel || t_in_parallel_region) {
    if (threads > 1 && n < min_parallel && !t_in_parallel_region) {
      static obs::Counter& cutoff_hits =
          obs::GetCounter("exec.parallel.serial_cutoff_hits");
      cutoff_hits.Add(1);
    }
    fn(0, n);
    return;
  }
  // A few chunks per thread smooths skewed per-range costs; the partition
  // is a pure function of (n, chunks), so results stay deterministic.
  const size_t chunks = std::min(n, threads * 4);
  static obs::Counter& forks = obs::GetCounter("exec.parallel.forks");
  static obs::Counter& tasks = obs::GetCounter("exec.parallel.tasks");
  static obs::Gauge& threads_gauge = obs::GetGauge("exec.threads");
  forks.Add(1);
  tasks.Add(chunks);
  threads_gauge.Set(static_cast<int64_t>(threads));
  TABULAR_TRACE_SPAN("parallel_for", "exec");
  ThreadPool::Instance().Run(threads, chunks, [&](size_t c) {
    TABULAR_TRACE_SPAN("parallel_for.range", "exec");
    // SplitPoint, not n * c / chunks: the product wraps for n near
    // SIZE_MAX and would hand workers garbage (even inverted) ranges.
    const size_t begin = SplitPoint(n, chunks, c);
    const size_t end = SplitPoint(n, chunks, c + 1);
    if (begin < end) fn(begin, end);
  });
}

}  // namespace tabular::exec
