#ifndef TABULAR_EXEC_PARALLEL_H_
#define TABULAR_EXEC_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <functional>

namespace tabular::exec {

/// Number of threads parallel kernels may use (including the calling
/// thread). Resolution order: the last `SetThreads` value, else the
/// `TABULAR_THREADS` environment variable, else
/// `std::thread::hardware_concurrency()`; always ≥ 1.
size_t Threads();

/// Overrides the thread count for subsequent kernels; 0 restores the
/// default resolution. Not meant to be called concurrently with running
/// kernels.
void SetThreads(size_t n);

/// RAII thread-count override, for benches and tests.
class ScopedThreads {
 public:
  explicit ScopedThreads(size_t n);
  ~ScopedThreads();
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  size_t previous_;
};

/// Runs `fn(begin, end)` over a static partition of [0, n) using the
/// process-wide worker pool plus the calling thread.
///
/// Determinism contract: the partition into contiguous disjoint ranges
/// depends only on `n` and `Threads()`, never on scheduling, so a kernel
/// whose range invocations write disjoint, position-determined output slots
/// produces byte-identical results to the serial path at any thread count.
///
/// Stays serial (one inline `fn(0, n)` call) when `n < min_parallel`, when
/// `Threads() == 1`, or when already inside a parallel region (no nested
/// parallelism). `fn` must not throw.
void ParallelFor(size_t n, size_t min_parallel,
                 const std::function<void(size_t, size_t)>& fn);

/// Default `min_parallel` for cell-filling kernels: below this many output
/// cells the fork/join overhead dominates any speedup.
inline constexpr size_t kDefaultSerialCutoff = 1 << 14;

/// Boundary `i` of the balanced partition of [0, n) into `parts` contiguous
/// ranges: range `i` is [SplitPoint(n, parts, i), SplitPoint(n, parts, i+1)),
/// with the first n % parts ranges one element longer. Equivalent to the
/// naive `n * i / parts` but overflow-safe for any n ≤ SIZE_MAX: the naive
/// product wraps once n exceeds SIZE_MAX / parts, silently collapsing or
/// reordering range boundaries.
inline constexpr size_t SplitPoint(size_t n, size_t parts, size_t i) {
  return i * (n / parts) + (i < n % parts ? i : n % parts);
}

/// Sorts [first, last) with `comp`: chunk-sorts a power-of-two static
/// partition in parallel, then pairwise `inplace_merge` passes (parallel
/// across disjoint pairs within each pass). Not stable. Small or
/// single-threaded inputs fall through to `std::sort`.
template <class RandomIt, class Compare>
void ParallelSort(RandomIt first, RandomIt last, Compare comp) {
  const size_t n = static_cast<size_t>(last - first);
  size_t chunks = 1;
  while (chunks < Threads() && chunks < 64) chunks <<= 1;
  if (chunks <= 1 || n < kDefaultSerialCutoff) {
    std::sort(first, last, comp);
    return;
  }
  const auto bound = [n, chunks](size_t c) { return SplitPoint(n, chunks, c); };
  ParallelFor(chunks, 1, [&](size_t cb, size_t ce) {
    for (size_t c = cb; c < ce; ++c) {
      std::sort(first + bound(c), first + bound(c + 1), comp);
    }
  });
  for (size_t width = 1; width < chunks; width <<= 1) {
    ParallelFor(chunks / (2 * width), 1, [&](size_t gb, size_t ge) {
      for (size_t g = gb; g < ge; ++g) {
        const size_t lo = 2 * width * g;
        std::inplace_merge(first + bound(lo), first + bound(lo + width),
                           first + bound(lo + 2 * width), comp);
      }
    });
  }
}

}  // namespace tabular::exec

#endif  // TABULAR_EXEC_PARALLEL_H_
