#include "relational/canonical.h"

#include <map>
#include <string>
#include <vector>

namespace tabular::rel {

using core::Symbol;
using core::SymbolVec;
using core::Table;
using core::TabularDatabase;

core::Symbol RepDataName() { return Symbol::Name("Data"); }
core::Symbol RepMapName() { return Symbol::Name("Map"); }

namespace {

Symbol NilId(const CanonicalOptions& options) {
  return Symbol::Value(std::string(options.id_prefix) + "_nil");
}

}  // namespace

Result<RelationalDatabase> CanonicalEncode(const TabularDatabase& db,
                                           const CanonicalOptions& options) {
  Relation data(RepDataName(),
                {Symbol::Name("Tbl"), Symbol::Name("Row"), Symbol::Name("Col"),
                 Symbol::Name("Val")});
  Relation map(RepMapName(), {Symbol::Name("Id"), Symbol::Name("Entry")});

  size_t counter = 0;
  auto fresh = [&]() {
    return Symbol::Value(std::string(options.id_prefix) +
                         std::to_string(counter++));
  };
  // The nil marker is deliberately *not* given a Map entry: decode
  // recognizes it structurally as an unmapped id (an ordinary row id often
  // maps to ⊥, so the entry value cannot distinguish it).
  const Symbol nil = NilId(options);

  for (const Table& t : db.tables()) {
    Symbol tid = fresh();
    TABULAR_RETURN_NOT_OK(map.Insert({tid, t.name()}));
    std::vector<Symbol> row_ids(t.num_rows());
    std::vector<Symbol> col_ids(t.num_cols());
    for (size_t i = 1; i < t.num_rows(); ++i) {
      row_ids[i] = fresh();
      TABULAR_RETURN_NOT_OK(map.Insert({row_ids[i], t.at(i, 0)}));
    }
    for (size_t j = 1; j < t.num_cols(); ++j) {
      col_ids[j] = fresh();
      TABULAR_RETURN_NOT_OK(map.Insert({col_ids[j], t.at(0, j)}));
    }
    if (t.height() == 0 && t.width() == 0) {
      TABULAR_RETURN_NOT_OK(data.Insert({tid, nil, nil, nil}));
      continue;
    }
    if (t.width() == 0) {
      for (size_t i = 1; i < t.num_rows(); ++i) {
        TABULAR_RETURN_NOT_OK(data.Insert({tid, row_ids[i], nil, nil}));
      }
      continue;
    }
    if (t.height() == 0) {
      for (size_t j = 1; j < t.num_cols(); ++j) {
        TABULAR_RETURN_NOT_OK(data.Insert({tid, nil, col_ids[j], nil}));
      }
      continue;
    }
    for (size_t i = 1; i < t.num_rows(); ++i) {
      for (size_t j = 1; j < t.num_cols(); ++j) {
        Symbol vid = fresh();
        TABULAR_RETURN_NOT_OK(map.Insert({vid, t.at(i, j)}));
        TABULAR_RETURN_NOT_OK(data.Insert({tid, row_ids[i], col_ids[j], vid}));
      }
    }
  }

  RelationalDatabase out;
  out.Put(std::move(data));
  out.Put(std::move(map));
  return out;
}

Status ValidateRep(const RelationalDatabase& rep) {
  TABULAR_ASSIGN_OR_RETURN(Relation map, rep.Get(RepMapName()));
  TABULAR_ASSIGN_OR_RETURN(Relation data, rep.Get(RepDataName()));
  if (map.arity() != 2) {
    return Status::InvalidArgument("Map must have arity 2");
  }
  if (data.arity() != 4) {
    return Status::InvalidArgument("Data must have arity 4");
  }
  // FD Id -> Entry.
  std::map<Symbol, Symbol, core::SymbolLess> entries;
  for (const SymbolVec& t : map.tuples()) {
    auto [it, inserted] = entries.emplace(t[0], t[1]);
    if (!inserted && it->second != t[1]) {
      return Status::InvalidArgument("FD Id -> Entry violated at id " +
                                     t[0].ToString());
    }
  }
  // FD Tbl, Row, Col -> Val.
  std::map<SymbolVec, Symbol, TupleLess> cells;
  for (const SymbolVec& t : data.tuples()) {
    SymbolVec key{t[0], t[1], t[2]};
    auto [it, inserted] = cells.emplace(std::move(key), t[3]);
    if (!inserted && it->second != t[3]) {
      return Status::InvalidArgument("FD Tbl,Row,Col -> Val violated");
    }
  }
  return Status::OK();
}

Result<TabularDatabase> CanonicalDecode(const RelationalDatabase& rep) {
  TABULAR_RETURN_NOT_OK(ValidateRep(rep));
  TABULAR_ASSIGN_OR_RETURN(Relation map, rep.Get(RepMapName()));
  TABULAR_ASSIGN_OR_RETURN(Relation data, rep.Get(RepDataName()));

  std::map<Symbol, Symbol, core::SymbolLess> entry_of;
  for (const SymbolVec& t : map.tuples()) entry_of.emplace(t[0], t[1]);
  auto lookup = [&](Symbol id) -> Result<Symbol> {
    auto it = entry_of.find(id);
    if (it == entry_of.end()) {
      return Status::InvalidArgument("id " + id.ToString() +
                                     " has no Map entry");
    }
    return it->second;
  };
  // The nil marker is the (only) id without a Map entry; see
  // CanonicalEncode.
  auto is_nil_marker = [&](Symbol id) { return !entry_of.contains(id); };

  // Group Data tuples per table id, preserving deterministic order.
  std::map<Symbol, std::vector<const SymbolVec*>, core::SymbolLess> per_table;
  for (const SymbolVec& t : data.tuples()) {
    per_table[t[0]].push_back(&t);
  }

  TabularDatabase out;
  for (const auto& [tid, cells] : per_table) {
    TABULAR_ASSIGN_OR_RETURN(Symbol name, lookup(tid));
    // Collect row and column ids in order of first appearance.
    std::vector<Symbol> row_ids;
    std::vector<Symbol> col_ids;
    std::map<Symbol, size_t, core::SymbolLess> row_index;
    std::map<Symbol, size_t, core::SymbolLess> col_index;
    for (const SymbolVec* cell : cells) {
      Symbol rid = (*cell)[1];
      Symbol cid = (*cell)[2];
      if (!is_nil_marker(rid) && !row_index.contains(rid)) {
        row_index.emplace(rid, row_ids.size());
        row_ids.push_back(rid);
      }
      if (!is_nil_marker(cid) && !col_index.contains(cid)) {
        col_index.emplace(cid, col_ids.size());
        col_ids.push_back(cid);
      }
    }
    Table t(1 + row_ids.size(), 1 + col_ids.size());
    t.set_name(name);
    for (size_t i = 0; i < row_ids.size(); ++i) {
      TABULAR_ASSIGN_OR_RETURN(Symbol attr, lookup(row_ids[i]));
      t.set(i + 1, 0, attr);
    }
    for (size_t j = 0; j < col_ids.size(); ++j) {
      TABULAR_ASSIGN_OR_RETURN(Symbol attr, lookup(col_ids[j]));
      t.set(0, j + 1, attr);
    }
    for (const SymbolVec* cell : cells) {
      Symbol rid = (*cell)[1];
      Symbol cid = (*cell)[2];
      if (is_nil_marker(rid) || is_nil_marker(cid)) continue;
      TABULAR_ASSIGN_OR_RETURN(Symbol val, lookup((*cell)[3]));
      t.set(row_index[rid] + 1, col_index[cid] + 1, val);
    }
    out.Add(std::move(t));
  }
  return out;
}

Table RelationToTable(const Relation& r) {
  Table t(1, 1 + r.arity());
  t.set_name(r.name());
  for (size_t j = 0; j < r.arity(); ++j) t.set(0, j + 1, r.attributes()[j]);
  for (const SymbolVec& tuple : r.tuples()) {
    SymbolVec row;
    row.reserve(1 + tuple.size());
    row.push_back(Symbol::Null());
    row.insert(row.end(), tuple.begin(), tuple.end());
    t.AppendRow(row);
  }
  return t;
}

TabularDatabase RelationalToTabular(const RelationalDatabase& db) {
  TabularDatabase out;
  for (Symbol name : db.Names()) {
    out.Add(RelationToTable(*db.Find(name)));
  }
  return out;
}

Result<Relation> TableToRelation(const Table& t) {
  Relation out(t.name(), t.ColumnAttributes());
  TABULAR_RETURN_NOT_OK(out.Validate());
  for (size_t i = 1; i < t.num_rows(); ++i) {
    if (!t.at(i, 0).is_null()) {
      return Status::InvalidArgument(
          "table is not relation-shaped: row " + std::to_string(i) +
          " has a row attribute");
    }
    SymbolVec tuple;
    tuple.reserve(t.width());
    for (size_t j = 1; j < t.num_cols(); ++j) tuple.push_back(t.at(i, j));
    TABULAR_RETURN_NOT_OK(out.Insert(std::move(tuple)));
  }
  return out;
}

}  // namespace tabular::rel
