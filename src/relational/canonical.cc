#include "relational/canonical.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "exec/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tabular::rel {

using core::Symbol;
using core::SymbolVec;
using core::Table;
using core::TabularDatabase;

core::Symbol RepDataName() { return Symbol::Name("Data"); }
core::Symbol RepMapName() { return Symbol::Name("Map"); }

namespace {

Symbol NilId(const CanonicalOptions& options) {
  return Symbol::Value(std::string(options.id_prefix) + "_nil");
}

}  // namespace

Result<RelationalDatabase> CanonicalEncode(const TabularDatabase& db,
                                           const CanonicalOptions& options) {
  TABULAR_TRACE_SPAN("canonical_encode", "rel");
  // The nil marker is deliberately *not* given a Map entry: decode
  // recognizes it structurally as an unmapped id (an ordinary row id often
  // maps to ⊥, so the entry value cannot distinguish it).
  const Symbol nil = NilId(options);
  const std::string prefix(options.id_prefix);

  // Id assignment is a pure function of position — the offsets a
  // sequential counter would produce walking tables in order and, within a
  // table, the name, then row attributes, then column attributes, then
  // cells in row-major order. This keeps ids identical to the historical
  // counter-based encoding while letting tuple generation run in parallel.
  struct TablePlan {
    const Table* table;
    size_t m, n;         // Paper height/width.
    bool has_cells;      // m > 0 && n > 0.
    size_t id_base;      // First fresh id of this table.
    size_t map_base;     // First Map tuple slot (one per fresh id).
    size_t data_base;    // First Data tuple slot.
  };
  std::vector<TablePlan> plans;
  plans.reserve(db.tables().size());
  size_t ids = 0, data_total = 0;
  for (const Table& t : db.tables()) {
    TablePlan p;
    p.table = &t;
    p.m = t.height();
    p.n = t.width();
    p.has_cells = p.m > 0 && p.n > 0;
    p.id_base = ids;
    p.map_base = ids;
    p.data_base = data_total;
    ids += 1 + p.m + p.n + (p.has_cells ? p.m * p.n : 0);
    data_total += p.has_cells ? p.m * p.n
                  : (p.m == 0 && p.n == 0) ? 1
                                           : std::max(p.m, p.n);
    plans.push_back(p);
  }

  std::vector<SymbolVec> map_tuples(ids);
  std::vector<SymbolVec> data_tuples(data_total);
  const auto id_at = [&](size_t off) {
    return Symbol::Value(prefix + std::to_string(off));
  };
  for (const TablePlan& p : plans) {
    const Table& t = *p.table;
    const size_t m = p.m, n = p.n;
    const Symbol tid = id_at(p.id_base);
    map_tuples[p.map_base] = {tid, t.name()};
    std::vector<Symbol> row_ids(m + 1);
    std::vector<Symbol> col_ids(n + 1);
    for (size_t i = 1; i <= m; ++i) {
      row_ids[i] = id_at(p.id_base + i);
      map_tuples[p.map_base + i] = {row_ids[i], t.at(i, 0)};
    }
    for (size_t j = 1; j <= n; ++j) {
      col_ids[j] = id_at(p.id_base + m + j);
      map_tuples[p.map_base + m + j] = {col_ids[j], t.at(0, j)};
    }
    if (p.has_cells) {
      // One fresh id + Map tuple + Data tuple per cell, in row-major
      // order; each flat index owns its slots, so the fill parallelizes.
      const size_t cell_id_base = p.id_base + 1 + m + n;
      const size_t cell_map_base = p.map_base + 1 + m + n;
      exec::ParallelFor(m * n, exec::kDefaultSerialCutoff / 4,
                        [&](size_t begin, size_t end) {
        for (size_t c = begin; c < end; ++c) {
          const size_t i = 1 + c / n;
          const size_t j = 1 + c % n;
          const Symbol vid = id_at(cell_id_base + c);
          map_tuples[cell_map_base + c] = {vid, t.at(i, j)};
          data_tuples[p.data_base + c] = {tid, row_ids[i], col_ids[j], vid};
        }
      });
    } else if (m == 0 && n == 0) {
      data_tuples[p.data_base] = {tid, nil, nil, nil};
    } else if (n == 0) {
      for (size_t i = 1; i <= m; ++i) {
        data_tuples[p.data_base + i - 1] = {tid, row_ids[i], nil, nil};
      }
    } else {
      for (size_t j = 1; j <= n; ++j) {
        data_tuples[p.data_base + j - 1] = {tid, nil, col_ids[j], nil};
      }
    }
  }

  // Pre-sorting makes the set load linear.
  exec::ParallelSort(map_tuples.begin(), map_tuples.end(), TupleLess{});
  exec::ParallelSort(data_tuples.begin(), data_tuples.end(), TupleLess{});
  Relation data(RepDataName(),
                {Symbol::Name("Tbl"), Symbol::Name("Row"), Symbol::Name("Col"),
                 Symbol::Name("Val")});
  Relation map(RepMapName(), {Symbol::Name("Id"), Symbol::Name("Entry")});
  TABULAR_RETURN_NOT_OK(map.InsertBulk(std::move(map_tuples)));
  TABULAR_RETURN_NOT_OK(data.InsertBulk(std::move(data_tuples)));

  RelationalDatabase out;
  out.Put(std::move(data));
  out.Put(std::move(map));
  static obs::OpCounters counters("rel.canonical_encode");
  uint64_t rows_in = 0;
  for (const TablePlan& p : plans) rows_in += p.m;
  counters.Record(rows_in, ids);
  return out;
}

Status ValidateRep(const RelationalDatabase& rep) {
  TABULAR_ASSIGN_OR_RETURN(Relation map, rep.Get(RepMapName()));
  TABULAR_ASSIGN_OR_RETURN(Relation data, rep.Get(RepDataName()));
  if (map.arity() != 2) {
    return Status::InvalidArgument("Map must have arity 2");
  }
  if (data.arity() != 4) {
    return Status::InvalidArgument("Data must have arity 4");
  }
  // Tuples iterate in sorted (lexicographic) order and exact duplicates
  // are absorbed by set semantics, so two tuples agreeing on an FD's
  // left-hand side but not its right are adjacent: each check is a linear
  // adjacent-pair scan.
  // FD Id -> Entry.
  const SymbolVec* prev = nullptr;
  for (const SymbolVec& t : map.tuples()) {
    if (prev != nullptr && (*prev)[0] == t[0] && (*prev)[1] != t[1]) {
      return Status::InvalidArgument("FD Id -> Entry violated at id " +
                                     t[0].ToString());
    }
    prev = &t;
  }
  // FD Tbl, Row, Col -> Val.
  prev = nullptr;
  for (const SymbolVec& t : data.tuples()) {
    if (prev != nullptr && (*prev)[0] == t[0] && (*prev)[1] == t[1] &&
        (*prev)[2] == t[2] && (*prev)[3] != t[3]) {
      return Status::InvalidArgument("FD Tbl,Row,Col -> Val violated");
    }
    prev = &t;
  }
  return Status::OK();
}

Result<TabularDatabase> CanonicalDecode(const RelationalDatabase& rep) {
  TABULAR_TRACE_SPAN("canonical_decode", "rel");
  TABULAR_RETURN_NOT_OK(ValidateRep(rep));
  TABULAR_ASSIGN_OR_RETURN(Relation map, rep.Get(RepMapName()));
  TABULAR_ASSIGN_OR_RETURN(Relation data, rep.Get(RepDataName()));

  // Map tuples iterate sorted by id (the FD guarantees distinct ids), so
  // the id → entry table is a linear copy into a flat vector; lookups are
  // binary searches whose symbol compares are wait-free.
  std::vector<std::pair<Symbol, Symbol>> entry_of;
  entry_of.reserve(map.size());
  for (const SymbolVec& t : map.tuples()) entry_of.emplace_back(t[0], t[1]);
  const auto find_entry =
      [&](Symbol id) -> const std::pair<Symbol, Symbol>* {
    auto it = std::lower_bound(
        entry_of.begin(), entry_of.end(), id,
        [](const std::pair<Symbol, Symbol>& p, Symbol v) {
          return Symbol::Compare(p.first, v) < 0;
        });
    if (it == entry_of.end() || it->first != id) return nullptr;
    return &*it;
  };
  auto lookup = [&](Symbol id) -> Result<Symbol> {
    const auto* e = find_entry(id);
    if (e == nullptr) {
      return Status::InvalidArgument("id " + id.ToString() +
                                     " has no Map entry");
    }
    return e->second;
  };
  // The nil marker is the (only) id without a Map entry; see
  // CanonicalEncode.
  auto is_nil_marker = [&](Symbol id) { return find_entry(id) == nullptr; };

  // Data tuples iterate sorted with Tbl as the major key, so each table is
  // a contiguous run — no grouping map needed, and order is deterministic.
  std::vector<const SymbolVec*> cells;
  cells.reserve(data.size());
  for (const SymbolVec& t : data.tuples()) cells.push_back(&t);
  struct Run {
    size_t begin, end;
  };
  std::vector<Run> runs;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i == 0 || (*cells[i])[0] != (*cells[i - 1])[0]) {
      runs.push_back(Run{i, i});
    }
    runs.back().end = i + 1;
  }

  TabularDatabase out;
  for (const Run& run : runs) {
    const Symbol tid = (*cells[run.begin])[0];
    TABULAR_ASSIGN_OR_RETURN(Symbol name, lookup(tid));
    // Collect row and column ids in order of first appearance: chunked
    // parallel scan with chunk-local dedup, then an ordered serial merge —
    // the same order the serial scan produces.
    const size_t ncells = run.end - run.begin;
    struct Appearances {
      std::vector<Symbol> rows, cols;
    };
    const size_t nchunks =
        ncells < exec::kDefaultSerialCutoff ? 1 : exec::Threads() * 4;
    std::vector<Appearances> chunks(nchunks);
    exec::ParallelFor(nchunks, 2, [&](size_t cb, size_t ce) {
      for (size_t c = cb; c < ce; ++c) {
        Appearances& a = chunks[c];
        std::unordered_set<Symbol> seen_rows, seen_cols;
        // SplitPoint, not ncells * c / nchunks: the product wraps for
        // near-SIZE_MAX runs and would scan garbage ranges.
        const size_t lo = run.begin + exec::SplitPoint(ncells, nchunks, c);
        const size_t hi =
            run.begin + exec::SplitPoint(ncells, nchunks, c + 1);
        for (size_t i = lo; i < hi; ++i) {
          const Symbol rid = (*cells[i])[1];
          const Symbol cid = (*cells[i])[2];
          if (seen_rows.insert(rid).second && !is_nil_marker(rid)) {
            a.rows.push_back(rid);
          }
          if (seen_cols.insert(cid).second && !is_nil_marker(cid)) {
            a.cols.push_back(cid);
          }
        }
      }
    });
    std::vector<Symbol> row_ids, col_ids;
    std::unordered_map<Symbol, size_t> row_index, col_index;
    for (const Appearances& a : chunks) {
      for (Symbol rid : a.rows) {
        if (row_index.emplace(rid, row_ids.size()).second) {
          row_ids.push_back(rid);
        }
      }
      for (Symbol cid : a.cols) {
        if (col_index.emplace(cid, col_ids.size()).second) {
          col_ids.push_back(cid);
        }
      }
    }
    Table t(1 + row_ids.size(), 1 + col_ids.size());
    t.set_name(name);
    for (size_t i = 0; i < row_ids.size(); ++i) {
      TABULAR_ASSIGN_OR_RETURN(Symbol attr, lookup(row_ids[i]));
      t.set(i + 1, 0, attr);
    }
    for (size_t j = 0; j < col_ids.size(); ++j) {
      TABULAR_ASSIGN_OR_RETURN(Symbol attr, lookup(col_ids[j]));
      t.set(0, j + 1, attr);
    }
    // Cell fill: each tuple owns its (row, col) slot (FD-checked), so
    // ranges write disjoint cells. The scattered writes land on shared
    // chunks, so materialize them up front — a lazy chunk would otherwise
    // be resized racily by the first writer (see core::Column::Set).
    // Errors are flagged and reported by a serial rescan so the message
    // matches the serial path.
    t.MaterializeAll();
    std::atomic<bool> missing_val{false};
    exec::ParallelFor(ncells, exec::kDefaultSerialCutoff / 4,
                      [&](size_t begin, size_t end) {
      for (size_t i = run.begin + begin; i < run.begin + end; ++i) {
        const Symbol rid = (*cells[i])[1];
        const Symbol cid = (*cells[i])[2];
        if (is_nil_marker(rid) || is_nil_marker(cid)) continue;
        const auto* val = find_entry((*cells[i])[3]);
        if (val == nullptr) {
          missing_val.store(true, std::memory_order_relaxed);
          continue;
        }
        t.set(row_index.at(rid) + 1, col_index.at(cid) + 1, val->second);
      }
    });
    if (missing_val.load()) {
      for (size_t i = run.begin; i < run.end; ++i) {
        const Symbol rid = (*cells[i])[1];
        const Symbol cid = (*cells[i])[2];
        if (is_nil_marker(rid) || is_nil_marker(cid)) continue;
        TABULAR_RETURN_NOT_OK(lookup((*cells[i])[3]).status());
      }
    }
    out.Add(std::move(t));
  }
  static obs::OpCounters counters("rel.canonical_decode");
  uint64_t rows_out = 0;
  for (const core::Table& t : out.tables()) rows_out += t.height();
  counters.Record(data.size(), rows_out);
  return out;
}

Table RelationToTable(const Relation& r) {
  Table t(1, 1 + r.arity());
  t.set_name(r.name());
  for (size_t j = 0; j < r.arity(); ++j) t.set(0, j + 1, r.attributes()[j]);
  for (const SymbolVec& tuple : r.tuples()) {
    SymbolVec row;
    row.reserve(1 + tuple.size());
    row.push_back(Symbol::Null());
    row.insert(row.end(), tuple.begin(), tuple.end());
    t.AppendRow(row);
  }
  return t;
}

TabularDatabase RelationalToTabular(const RelationalDatabase& db) {
  TabularDatabase out;
  for (Symbol name : db.Names()) {
    out.Add(RelationToTable(*db.Find(name)));
  }
  return out;
}

Result<Relation> TableToRelation(const Table& t) {
  Relation out(t.name(), t.ColumnAttributes());
  TABULAR_RETURN_NOT_OK(out.Validate());
  for (size_t i = 1; i < t.num_rows(); ++i) {
    if (!t.at(i, 0).is_null()) {
      return Status::InvalidArgument(
          "table is not relation-shaped: row " + std::to_string(i) +
          " has a row attribute");
    }
    SymbolVec tuple;
    tuple.reserve(t.width());
    for (size_t j = 1; j < t.num_cols(); ++j) tuple.push_back(t.at(i, j));
    TABULAR_RETURN_NOT_OK(out.Insert(std::move(tuple)));
  }
  return out;
}

}  // namespace tabular::rel
