#include "relational/relation.h"

#include <algorithm>
#include <iterator>
#include <sstream>

namespace tabular::rel {

bool TupleLess::operator()(const SymbolVec& a, const SymbolVec& b) const {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(),
      [](Symbol x, Symbol y) { return Symbol::Compare(x, y) < 0; });
}

Relation::Relation(Symbol name, SymbolVec attributes)
    : name_(name), attributes_(std::move(attributes)) {}

Relation Relation::Make(const char* name, std::vector<const char*> attrs,
                        std::vector<std::vector<const char*>> tuples) {
  SymbolVec attributes;
  attributes.reserve(attrs.size());
  for (const char* a : attrs) attributes.push_back(Symbol::Name(a));
  Relation r(Symbol::Name(name), std::move(attributes));
  for (const auto& t : tuples) {
    SymbolVec tuple;
    tuple.reserve(t.size());
    for (const char* cell : t) tuple.push_back(core::ParseCell(cell));
    Status st = r.Insert(std::move(tuple));
    (void)st;  // fixture helper; arity mismatches are programming errors
  }
  return r;
}

Result<size_t> Relation::AttributeIndex(Symbol attr) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i] == attr) return i;
  }
  return Status::InvalidArgument("relation " + name_.ToString() +
                                 " has no attribute " + attr.ToString());
}

Status Relation::Insert(SymbolVec tuple) {
  if (tuple.size() != attributes_.size()) {
    return Status::InvalidArgument(
        "arity mismatch inserting into " + name_.ToString() + ": got " +
        std::to_string(tuple.size()) + ", want " +
        std::to_string(attributes_.size()));
  }
  tuples_.insert(std::move(tuple));
  return Status::OK();
}

Status Relation::InsertBulk(std::vector<SymbolVec> tuples) {
  for (const SymbolVec& t : tuples) {
    if (t.size() != attributes_.size()) {
      return Status::InvalidArgument(
          "arity mismatch inserting into " + name_.ToString() + ": got " +
          std::to_string(t.size()) + ", want " +
          std::to_string(attributes_.size()));
    }
  }
  if (tuples_.empty()) {
    // std::set's range constructor is linear when the input is sorted.
    tuples_ = std::set<SymbolVec, TupleLess>(
        std::make_move_iterator(tuples.begin()),
        std::make_move_iterator(tuples.end()));
  } else {
    for (SymbolVec& t : tuples) tuples_.insert(std::move(t));
  }
  return Status::OK();
}

Status Relation::Validate() const {
  if (attributes_.empty()) {
    return Status::InvalidArgument("relation with no attributes");
  }
  SymbolSet seen;
  for (Symbol a : attributes_) {
    if (a.is_null()) {
      return Status::InvalidArgument("⊥ attribute in relation schema");
    }
    if (!seen.insert(a).second) {
      return Status::InvalidArgument("duplicate attribute " + a.ToString());
    }
  }
  return Status::OK();
}

SymbolSet Relation::AllSymbols() const {
  SymbolSet out;
  out.insert(name_);
  for (Symbol a : attributes_) out.insert(a);
  for (const SymbolVec& t : tuples_) {
    for (Symbol s : t) out.insert(s);
  }
  return out;
}

std::string Relation::ToString() const {
  std::ostringstream out;
  out << name_.ToString() << "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i) out << ", ";
    out << attributes_[i].ToString();
  }
  out << ") [" << tuples_.size() << " tuples]\n";
  for (const SymbolVec& t : tuples_) {
    out << "  ";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i) out << " | ";
      out << t[i].ToString();
    }
    out << "\n";
  }
  return out.str();
}

void RelationalDatabase::Put(Relation r) {
  Symbol name = r.name();
  relations_.insert_or_assign(name, std::move(r));
}

Result<Relation> RelationalDatabase::Get(Symbol name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::InvalidArgument("no relation named " + name.ToString());
  }
  return it->second;
}

const Relation* RelationalDatabase::Find(Symbol name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

SymbolVec RelationalDatabase::Names() const {
  SymbolVec out;
  out.reserve(relations_.size());
  for (const auto& [name, r] : relations_) out.push_back(name);
  return out;
}

SymbolSet RelationalDatabase::AllSymbols() const {
  SymbolSet out;
  for (const auto& [name, r] : relations_) {
    SymbolSet s = r.AllSymbols();
    out.insert(s.begin(), s.end());
  }
  return out;
}

Result<Relation> Select(const Relation& r, Symbol a, Symbol b,
                        Symbol result_name) {
  TABULAR_ASSIGN_OR_RETURN(size_t ia, r.AttributeIndex(a));
  TABULAR_ASSIGN_OR_RETURN(size_t ib, r.AttributeIndex(b));
  Relation out(result_name, r.attributes());
  for (const SymbolVec& t : r.tuples()) {
    if (t[ia] == t[ib]) TABULAR_RETURN_NOT_OK(out.Insert(t));
  }
  return out;
}

Result<Relation> SelectConst(const Relation& r, Symbol a, Symbol v,
                             Symbol result_name) {
  TABULAR_ASSIGN_OR_RETURN(size_t ia, r.AttributeIndex(a));
  Relation out(result_name, r.attributes());
  for (const SymbolVec& t : r.tuples()) {
    if (t[ia] == v) TABULAR_RETURN_NOT_OK(out.Insert(t));
  }
  return out;
}

Result<Relation> Project(const Relation& r, const SymbolVec& attrs,
                         Symbol result_name) {
  std::vector<size_t> idx;
  idx.reserve(attrs.size());
  for (Symbol a : attrs) {
    TABULAR_ASSIGN_OR_RETURN(size_t i, r.AttributeIndex(a));
    idx.push_back(i);
  }
  Relation out(result_name, attrs);
  TABULAR_RETURN_NOT_OK(out.Validate());
  for (const SymbolVec& t : r.tuples()) {
    SymbolVec proj;
    proj.reserve(idx.size());
    for (size_t i : idx) proj.push_back(t[i]);
    TABULAR_RETURN_NOT_OK(out.Insert(std::move(proj)));
  }
  return out;
}

Result<Relation> Rename(const Relation& r, Symbol from, Symbol to,
                        Symbol result_name) {
  TABULAR_ASSIGN_OR_RETURN(size_t i, r.AttributeIndex(from));
  SymbolVec attrs = r.attributes();
  attrs[i] = to;
  Relation out(result_name, std::move(attrs));
  TABULAR_RETURN_NOT_OK(out.Validate());
  for (const SymbolVec& t : r.tuples()) TABULAR_RETURN_NOT_OK(out.Insert(t));
  return out;
}

namespace {

Status RequireSameScheme(const Relation& r, const Relation& s,
                         const char* op) {
  if (r.attributes() != s.attributes()) {
    return Status::InvalidArgument(std::string(op) +
                                   " requires identical attribute lists");
  }
  return Status::OK();
}

}  // namespace

Result<Relation> Union(const Relation& r, const Relation& s,
                       Symbol result_name) {
  TABULAR_RETURN_NOT_OK(RequireSameScheme(r, s, "union"));
  Relation out(result_name, r.attributes());
  for (const SymbolVec& t : r.tuples()) TABULAR_RETURN_NOT_OK(out.Insert(t));
  for (const SymbolVec& t : s.tuples()) TABULAR_RETURN_NOT_OK(out.Insert(t));
  return out;
}

Result<Relation> Difference(const Relation& r, const Relation& s,
                            Symbol result_name) {
  TABULAR_RETURN_NOT_OK(RequireSameScheme(r, s, "difference"));
  Relation out(result_name, r.attributes());
  for (const SymbolVec& t : r.tuples()) {
    if (!s.Contains(t)) TABULAR_RETURN_NOT_OK(out.Insert(t));
  }
  return out;
}

Result<Relation> Product(const Relation& r, const Relation& s,
                         Symbol result_name) {
  SymbolVec attrs = r.attributes();
  for (Symbol a : s.attributes()) {
    for (Symbol b : r.attributes()) {
      if (a == b) {
        return Status::InvalidArgument(
            "product requires disjoint attribute lists; both have " +
            a.ToString());
      }
    }
    attrs.push_back(a);
  }
  Relation out(result_name, std::move(attrs));
  for (const SymbolVec& t : r.tuples()) {
    for (const SymbolVec& u : s.tuples()) {
      SymbolVec joined = t;
      joined.insert(joined.end(), u.begin(), u.end());
      TABULAR_RETURN_NOT_OK(out.Insert(std::move(joined)));
    }
  }
  return out;
}

Result<Relation> NaturalJoin(const Relation& r, const Relation& s,
                             Symbol result_name) {
  // Shared attributes, in r's order.
  std::vector<std::pair<size_t, size_t>> shared;
  std::vector<size_t> s_extra;
  SymbolVec attrs = r.attributes();
  for (size_t j = 0; j < s.attributes().size(); ++j) {
    bool found = false;
    for (size_t i = 0; i < r.attributes().size(); ++i) {
      if (r.attributes()[i] == s.attributes()[j]) {
        shared.emplace_back(i, j);
        found = true;
        break;
      }
    }
    if (!found) {
      s_extra.push_back(j);
      attrs.push_back(s.attributes()[j]);
    }
  }
  Relation out(result_name, std::move(attrs));
  for (const SymbolVec& t : r.tuples()) {
    for (const SymbolVec& u : s.tuples()) {
      bool match = true;
      for (auto [i, j] : shared) {
        if (t[i] != u[j]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      SymbolVec joined = t;
      for (size_t j : s_extra) joined.push_back(u[j]);
      TABULAR_RETURN_NOT_OK(out.Insert(std::move(joined)));
    }
  }
  return out;
}

}  // namespace tabular::rel
