#ifndef TABULAR_RELATIONAL_RELATION_H_
#define TABULAR_RELATIONAL_RELATION_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/symbol.h"
#include "core/table.h"

namespace tabular::rel {

using core::Symbol;
using core::SymbolSet;
using core::SymbolVec;
using tabular::Result;
using tabular::Status;

/// Lexicographic order on tuples by Symbol::Compare; fixes a deterministic
/// iteration order for relations.
struct TupleLess {
  bool operator()(const SymbolVec& a, const SymbolVec& b) const;
};

/// A classical relation: a named, fixed-width set of tuples over distinct
/// attribute names. This is the substrate for the paper's §4.1 canonical
/// representation and the FO+while+new language of [3], and the baseline
/// model the tabular model generalizes.
class Relation {
 public:
  /// An empty relation named `name` over `attributes` (which must be
  /// non-empty and pairwise distinct; checked by `Validate`).
  Relation(Symbol name, SymbolVec attributes);

  /// Builder from string shorthand: name and attributes become names,
  /// tuple cells are parsed with `core::ParseCell`.
  static Relation Make(const char* name, std::vector<const char*> attrs,
                       std::vector<std::vector<const char*>> tuples = {});

  Symbol name() const { return name_; }
  void set_name(Symbol name) { name_ = name; }
  const SymbolVec& attributes() const { return attributes_; }
  size_t arity() const { return attributes_.size(); }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Index of `attr` or an error.
  Result<size_t> AttributeIndex(Symbol attr) const;

  /// Inserts a tuple (set semantics: duplicates are absorbed).
  /// Errors if the arity does not match.
  Status Insert(SymbolVec tuple);

  /// Bulk insert with the same semantics as repeated `Insert`. Into an
  /// empty relation, pre-sorted (TupleLess) input loads in linear time —
  /// the fast path for kernels that generate and sort tuples in parallel.
  Status InsertBulk(std::vector<SymbolVec> tuples);

  /// The tuples in deterministic (lexicographic) order.
  const std::set<SymbolVec, TupleLess>& tuples() const { return tuples_; }

  bool Contains(const SymbolVec& tuple) const {
    return tuples_.contains(tuple);
  }

  /// Verifies the schema invariants (distinct non-⊥ attribute names).
  Status Validate() const;

  /// Every symbol occurring in the relation (name, attributes, fields).
  SymbolSet AllSymbols() const;

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.name_ == b.name_ && a.attributes_ == b.attributes_ &&
           a.tuples_ == b.tuples_;
  }

  std::string ToString() const;

 private:
  Symbol name_;
  SymbolVec attributes_;
  std::set<SymbolVec, TupleLess> tuples_;
};

/// A relational database: relations keyed by name (at most one per name —
/// the classical model, unlike tabular databases).
class RelationalDatabase {
 public:
  /// Adds or replaces the relation carrying `r.name()`.
  void Put(Relation r);

  /// Looks up a relation; error if absent.
  Result<Relation> Get(Symbol name) const;
  const Relation* Find(Symbol name) const;

  bool Has(Symbol name) const { return relations_.contains(name); }
  size_t size() const { return relations_.size(); }
  void Remove(Symbol name) { relations_.erase(name); }

  /// Names in deterministic order.
  SymbolVec Names() const;

  SymbolSet AllSymbols() const;

  friend bool operator==(const RelationalDatabase& a,
                         const RelationalDatabase& b) {
    return a.relations_ == b.relations_;
  }

 private:
  std::map<Symbol, Relation, core::SymbolLess> relations_;
};

// -- Classical relational algebra (set semantics) ----------------------------

/// σ_{a = b}(r): keeps tuples whose `a` and `b` fields coincide.
Result<Relation> Select(const Relation& r, Symbol a, Symbol b,
                        Symbol result_name);

/// σ_{a = v}(r): constant selection.
Result<Relation> SelectConst(const Relation& r, Symbol a, Symbol v,
                             Symbol result_name);

/// π_𝒜(r): projection onto `attrs` (in the order given, which must be
/// distinct attributes of r); duplicates collapse.
Result<Relation> Project(const Relation& r, const SymbolVec& attrs,
                         Symbol result_name);

/// ρ_{b←a}(r): renames attribute `a` to `b`.
Result<Relation> Rename(const Relation& r, Symbol from, Symbol to,
                        Symbol result_name);

/// r ∪ s: requires identical attribute lists.
Result<Relation> Union(const Relation& r, const Relation& s,
                       Symbol result_name);

/// r \ s: requires identical attribute lists.
Result<Relation> Difference(const Relation& r, const Relation& s,
                            Symbol result_name);

/// r × s: attribute lists must be disjoint.
Result<Relation> Product(const Relation& r, const Relation& s,
                         Symbol result_name);

/// r ⋈ s: natural join on the shared attributes.
Result<Relation> NaturalJoin(const Relation& r, const Relation& s,
                             Symbol result_name);

}  // namespace tabular::rel

#endif  // TABULAR_RELATIONAL_RELATION_H_
