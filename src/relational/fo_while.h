#ifndef TABULAR_RELATIONAL_FO_WHILE_H_
#define TABULAR_RELATIONAL_FO_WHILE_H_

#include <memory>
#include <vector>

#include "lang/ast.h"
#include "relational/relation.h"

namespace tabular::rel {

/// The relational language FO + while + new of Van den Bussche et al. [3],
/// which the paper simulates inside the tabular algebra (Theorem 4.1) to
/// establish completeness. Expressions are classical relational algebra;
/// statements assign, invent values ("new"), and loop.

struct RelExpr;
using RelExprPtr = std::shared_ptr<RelExpr>;

/// A relational-algebra expression tree.
struct RelExpr {
  enum class Kind {
    kRelation,     // a database relation by name
    kConstRel,     // a literal single-tuple relation (program constants)
    kSelect,       // σ_{a=b}
    kSelectConst,  // σ_{a=v}
    kProject,      // π_attrs
    kRename,       // ρ_{b<-a}
    kUnion,
    kDifference,
    kProduct,
  };

  Kind kind = Kind::kRelation;
  Symbol name;      // kRelation
  Symbol a;         // select / rename "from"
  Symbol b;         // select other attr / rename "to"
  Symbol v;         // selectconst constant
  SymbolVec attrs;  // project / kConstRel schema
  SymbolVec tuple;  // kConstRel single tuple
  RelExprPtr left;
  RelExprPtr right;

  static RelExprPtr Rel(Symbol name);
  /// {(tuple)} over `attrs`: injects program constants. Mentioning value
  /// constants makes the expressed transformation C-generic (generic
  /// modulo those constants), the standard relaxation.
  static RelExprPtr Const(SymbolVec attrs, SymbolVec tuple);
  static RelExprPtr Sel(RelExprPtr e, Symbol a, Symbol b);
  static RelExprPtr SelConst(RelExprPtr e, Symbol a, Symbol v);
  static RelExprPtr Proj(RelExprPtr e, SymbolVec attrs);
  static RelExprPtr Ren(RelExprPtr e, Symbol from, Symbol to);
  static RelExprPtr Un(RelExprPtr l, RelExprPtr r);
  static RelExprPtr Diff(RelExprPtr l, RelExprPtr r);
  static RelExprPtr Prod(RelExprPtr l, RelExprPtr r);
};

/// One FO+while+new statement.
struct FoStatement {
  enum class Kind {
    kAssign,  // R := E
    kNew,     // R := new_A(E): E extended with a column A of fresh values
    kWhile,   // while C ≠ ∅ do body
  };

  Kind kind = Kind::kAssign;
  Symbol target;     // kAssign / kNew
  RelExprPtr expr;   // kAssign / kNew
  Symbol new_attr;   // kNew
  Symbol condition;  // kWhile
  std::vector<FoStatement> body;

  static FoStatement Assign(Symbol target, RelExprPtr e);
  static FoStatement New(Symbol target, RelExprPtr e, Symbol attr);
  static FoStatement While(Symbol condition, std::vector<FoStatement> body);
};

struct FoProgram {
  std::vector<FoStatement> statements;
};

/// Guards for FO+while+new runs (the language is computationally complete).
struct FoOptions {
  size_t max_while_iterations = 10000;
  size_t max_steps = 1000000;
};

/// Evaluates an expression against a database.
Result<Relation> EvalRelExpr(const RelExpr& e, const RelationalDatabase& db,
                             Symbol result_name);

/// Runs an FO+while+new program, updating `db` in place. Fresh values are
/// drawn deterministically, avoiding every symbol in the database
/// (determinacy makes the choice immaterial up to isomorphism).
Status RunFoProgram(const FoProgram& program, RelationalDatabase* db,
                    const FoOptions& options = FoOptions());

/// A compiled FO+while+new program: the tabular program plus the constant
/// tables it references (to be added to the database before running).
struct FoTranslation {
  lang::Program program;
  std::vector<core::Table> prelude_tables;  // names "fo_const<k>"
};

/// Theorem 4.1: compiles an FO+while+new program into an equivalent
/// tabular-algebra program operating on the tabular images of the
/// relations (see rel::RelationalToTabular). The translation introduces
/// scratch tables named "fo_tmp<k>" (and constant tables "fo_const<k>");
/// after the run, each FO variable R holds, as a table named R, the
/// relation the FO program would compute.
Result<FoTranslation> TranslateFoToTabular(const FoProgram& program);

}  // namespace tabular::rel

#endif  // TABULAR_RELATIONAL_FO_WHILE_H_
