#ifndef TABULAR_RELATIONAL_CANONICAL_H_
#define TABULAR_RELATIONAL_CANONICAL_H_

#include "core/database.h"
#include "relational/relation.h"

namespace tabular::rel {

/// The canonical representation of tabular databases (paper §4.1,
/// Lemmas 4.2/4.3): a tabular database D is encoded as a relational
/// database over the fixed scheme
///
///   Rep = { Data(Tbl, Row, Col, Val), Map(Id, Entry) }
///
/// with FDs Id → Entry and Tbl, Row, Col → Val. Every *occurrence* in D
/// gets a unique id: one per table (its name occurrence), one per row
/// (its row-attribute occurrence), one per column, and one per data cell.
/// `Map` associates ids with the entries at those occurrences, and `Data`
/// ties each cell occurrence to its table, row and column occurrences.
/// This flattens variable-width tables into fixed-width relations — the
/// pivot of the paper's completeness proof (Theorem 4.4).
///
/// paper-gap: the extended abstract leaves degenerate tables (no data
/// cells: height 0 and/or width 0) unspecified. We reserve the id value
/// `id_nil` (recognizable as the id with no Map entry) and emit
/// Data(tbl, row, id_nil, id_nil) for each
/// row of a width-0 table, Data(tbl, id_nil, col, id_nil) for each column
/// of a height-0 table, and Data(tbl, id_nil, id_nil, id_nil) for a bare
/// name, so that P_Rep⁻ ∘ P_Rep is the identity on *every* database.

/// Attribute and relation names of the Rep scheme.
core::Symbol RepDataName();   // "Data"
core::Symbol RepMapName();    // "Map"

/// Options controlling id generation (ids are values "id<k>"; the choice
/// is immaterial up to isomorphism — determinacy, §4.1 (iv)).
struct CanonicalOptions {
  const char* id_prefix = "id";
};

/// P_Rep (Lemma 4.2): encodes `db` into its canonical representation.
Result<RelationalDatabase> CanonicalEncode(
    const core::TabularDatabase& db,
    const CanonicalOptions& options = CanonicalOptions());

/// P_Rep⁻ (Lemma 4.3): decodes a canonical representation back into a
/// tabular database. Row/column order follows first appearance in the
/// deterministic tuple order, so the result equals the original up to
/// permutations of non-attribute rows and columns — exactly the paper's
/// notion of database equality. Verifies the Rep FDs; missing
/// (row, column) combinations decode to ⊥.
Result<core::TabularDatabase> CanonicalDecode(const RelationalDatabase& rep);

/// Checks the two Rep functional dependencies; OK iff both hold.
Status ValidateRep(const RelationalDatabase& rep);

// -- Bridges between the models ----------------------------------------------

/// The natural tabular image of a relation: name cell, attribute row, one
/// data row per tuple with a ⊥ row attribute.
core::Table RelationToTable(const Relation& r);

/// Adds the tabular image of every relation of `db` to `out`.
core::TabularDatabase RelationalToTabular(const RelationalDatabase& db);

/// Reads a relational-shaped table back into a relation: all row
/// attributes must be ⊥ and the attribute names distinct.
Result<Relation> TableToRelation(const core::Table& t);

}  // namespace tabular::rel

#endif  // TABULAR_RELATIONAL_CANONICAL_H_
