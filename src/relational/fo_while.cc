#include "relational/fo_while.h"

#include <string>
#include <utility>

#include "algebra/tagging.h"

namespace tabular::rel {

RelExprPtr RelExpr::Rel(Symbol name) {
  auto e = std::make_shared<RelExpr>();
  e->kind = Kind::kRelation;
  e->name = name;
  return e;
}

RelExprPtr RelExpr::Const(SymbolVec attrs, SymbolVec tuple) {
  auto e = std::make_shared<RelExpr>();
  e->kind = Kind::kConstRel;
  e->attrs = std::move(attrs);
  e->tuple = std::move(tuple);
  return e;
}

RelExprPtr RelExpr::Sel(RelExprPtr sub, Symbol a, Symbol b) {
  auto e = std::make_shared<RelExpr>();
  e->kind = Kind::kSelect;
  e->left = std::move(sub);
  e->a = a;
  e->b = b;
  return e;
}

RelExprPtr RelExpr::SelConst(RelExprPtr sub, Symbol a, Symbol v) {
  auto e = std::make_shared<RelExpr>();
  e->kind = Kind::kSelectConst;
  e->left = std::move(sub);
  e->a = a;
  e->v = v;
  return e;
}

RelExprPtr RelExpr::Proj(RelExprPtr sub, SymbolVec attrs) {
  auto e = std::make_shared<RelExpr>();
  e->kind = Kind::kProject;
  e->left = std::move(sub);
  e->attrs = std::move(attrs);
  return e;
}

RelExprPtr RelExpr::Ren(RelExprPtr sub, Symbol from, Symbol to) {
  auto e = std::make_shared<RelExpr>();
  e->kind = Kind::kRename;
  e->left = std::move(sub);
  e->a = from;
  e->b = to;
  return e;
}

RelExprPtr RelExpr::Un(RelExprPtr l, RelExprPtr r) {
  auto e = std::make_shared<RelExpr>();
  e->kind = Kind::kUnion;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

RelExprPtr RelExpr::Diff(RelExprPtr l, RelExprPtr r) {
  auto e = std::make_shared<RelExpr>();
  e->kind = Kind::kDifference;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

RelExprPtr RelExpr::Prod(RelExprPtr l, RelExprPtr r) {
  auto e = std::make_shared<RelExpr>();
  e->kind = Kind::kProduct;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

FoStatement FoStatement::Assign(Symbol target, RelExprPtr e) {
  FoStatement s;
  s.kind = Kind::kAssign;
  s.target = target;
  s.expr = std::move(e);
  return s;
}

FoStatement FoStatement::New(Symbol target, RelExprPtr e, Symbol attr) {
  FoStatement s;
  s.kind = Kind::kNew;
  s.target = target;
  s.expr = std::move(e);
  s.new_attr = attr;
  return s;
}

FoStatement FoStatement::While(Symbol condition,
                               std::vector<FoStatement> body) {
  FoStatement s;
  s.kind = Kind::kWhile;
  s.condition = condition;
  s.body = std::move(body);
  return s;
}

Result<Relation> EvalRelExpr(const RelExpr& e, const RelationalDatabase& db,
                             Symbol result_name) {
  switch (e.kind) {
    case RelExpr::Kind::kRelation: {
      TABULAR_ASSIGN_OR_RETURN(Relation r, db.Get(e.name));
      r.set_name(result_name);
      return r;
    }
    case RelExpr::Kind::kConstRel: {
      Relation r(result_name, e.attrs);
      TABULAR_RETURN_NOT_OK(r.Validate());
      TABULAR_RETURN_NOT_OK(r.Insert(e.tuple));
      return r;
    }
    case RelExpr::Kind::kSelect: {
      TABULAR_ASSIGN_OR_RETURN(Relation l,
                               EvalRelExpr(*e.left, db, result_name));
      return Select(l, e.a, e.b, result_name);
    }
    case RelExpr::Kind::kSelectConst: {
      TABULAR_ASSIGN_OR_RETURN(Relation l,
                               EvalRelExpr(*e.left, db, result_name));
      return SelectConst(l, e.a, e.v, result_name);
    }
    case RelExpr::Kind::kProject: {
      TABULAR_ASSIGN_OR_RETURN(Relation l,
                               EvalRelExpr(*e.left, db, result_name));
      return Project(l, e.attrs, result_name);
    }
    case RelExpr::Kind::kRename: {
      TABULAR_ASSIGN_OR_RETURN(Relation l,
                               EvalRelExpr(*e.left, db, result_name));
      return Rename(l, e.a, e.b, result_name);
    }
    case RelExpr::Kind::kUnion: {
      TABULAR_ASSIGN_OR_RETURN(Relation l,
                               EvalRelExpr(*e.left, db, result_name));
      TABULAR_ASSIGN_OR_RETURN(Relation r,
                               EvalRelExpr(*e.right, db, result_name));
      return Union(l, r, result_name);
    }
    case RelExpr::Kind::kDifference: {
      TABULAR_ASSIGN_OR_RETURN(Relation l,
                               EvalRelExpr(*e.left, db, result_name));
      TABULAR_ASSIGN_OR_RETURN(Relation r,
                               EvalRelExpr(*e.right, db, result_name));
      return Difference(l, r, result_name);
    }
    case RelExpr::Kind::kProduct: {
      TABULAR_ASSIGN_OR_RETURN(Relation l,
                               EvalRelExpr(*e.left, db, result_name));
      TABULAR_ASSIGN_OR_RETURN(Relation r,
                               EvalRelExpr(*e.right, db, result_name));
      return Product(l, r, result_name);
    }
  }
  return Status::Internal("unknown expression kind");
}

namespace {

Status RunStatements(const std::vector<FoStatement>& statements,
                     RelationalDatabase* db,
                     algebra::FreshValueGenerator* gen,
                     const FoOptions& options, size_t* steps) {
  for (const FoStatement& s : statements) {
    if (++*steps > options.max_steps) {
      return Status::ResourceExhausted("FO program step limit exceeded");
    }
    switch (s.kind) {
      case FoStatement::Kind::kAssign: {
        TABULAR_ASSIGN_OR_RETURN(Relation r,
                                 EvalRelExpr(*s.expr, *db, s.target));
        db->Put(std::move(r));
        break;
      }
      case FoStatement::Kind::kNew: {
        TABULAR_ASSIGN_OR_RETURN(Relation base,
                                 EvalRelExpr(*s.expr, *db, s.target));
        gen->Reserve(db->AllSymbols());
        SymbolVec attrs = base.attributes();
        attrs.push_back(s.new_attr);
        Relation tagged(s.target, std::move(attrs));
        TABULAR_RETURN_NOT_OK(tagged.Validate());
        for (const SymbolVec& t : base.tuples()) {
          SymbolVec extended = t;
          extended.push_back(gen->Fresh());
          TABULAR_RETURN_NOT_OK(tagged.Insert(std::move(extended)));
        }
        db->Put(std::move(tagged));
        break;
      }
      case FoStatement::Kind::kWhile: {
        for (size_t iter = 0;; ++iter) {
          if (iter >= options.max_while_iterations) {
            return Status::ResourceExhausted(
                "FO while loop exceeded " +
                std::to_string(options.max_while_iterations) +
                " iterations");
          }
          const Relation* cond = db->Find(s.condition);
          if (cond == nullptr || cond->empty()) break;
          TABULAR_RETURN_NOT_OK(
              RunStatements(s.body, db, gen, options, steps));
        }
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status RunFoProgram(const FoProgram& program, RelationalDatabase* db,
                    const FoOptions& options) {
  algebra::FreshValueGenerator gen(db->AllSymbols());
  size_t steps = 0;
  return RunStatements(program.statements, db, &gen, options, &steps);
}

// ---------------------------------------------------------------------------
// Theorem 4.1: FO + while + new  ⟶  tabular algebra
// ---------------------------------------------------------------------------

namespace {

using lang::Assignment;
using lang::OpKind;
using lang::Param;
using lang::Statement;

/// Emits tabular statements computing `e` into a table named `out`.
class FoTranslator {
 public:
  Symbol FreshScratch() {
    return Symbol::Name("fo_tmp" + std::to_string(counter_++));
  }

  void Emit(Assignment a, std::vector<Statement>* sink) {
    Statement s;
    s.node = std::move(a);
    sink->push_back(std::move(s));
  }

  /// Appends `T <- cleanup by {*9} on {_} (T);` — generic duplicate-row
  /// elimination (the unbound set-star reads "all column attributes").
  void EmitDedup(Symbol t, std::vector<Statement>* sink) {
    Assignment a;
    a.op = OpKind::kCleanUp;
    a.target = Param::Literal(t);
    a.params.push_back(Param::Wildcard(9));
    a.params.push_back(Param::Null());
    a.args.push_back(Param::Literal(t));
    Emit(std::move(a), sink);
  }

  /// Appends `T <- purge on {*9} by {} (T);` — merges the duplicated
  /// column copies a tabular union introduces.
  void EmitColumnPurge(Symbol t, std::vector<Statement>* sink) {
    Assignment a;
    a.op = OpKind::kPurge;
    a.target = Param::Literal(t);
    a.params.push_back(Param::Wildcard(9));
    a.params.push_back(Param{});  // empty 'by': key columns by attribute
    a.args.push_back(Param::Literal(t));
    Emit(std::move(a), sink);
  }

  Status Translate(const RelExpr& e, Symbol out,
                   std::vector<Statement>* sink) {
    switch (e.kind) {
      case RelExpr::Kind::kRelation: {
        // Copy via an all-attributes projection (also renames).
        Assignment a;
        a.op = OpKind::kProject;
        a.target = Param::Literal(out);
        a.params.push_back(Param::Wildcard(9));
        a.args.push_back(Param::Literal(e.name));
        Emit(std::move(a), sink);
        return Status::OK();
      }
      case RelExpr::Kind::kConstRel: {
        // Materialize the constant tuple as a prelude table and copy it.
        Symbol cname =
            Symbol::Name("fo_const" + std::to_string(prelude_.size()));
        core::Table t(1, 1 + e.attrs.size());
        t.set_name(cname);
        for (size_t j = 0; j < e.attrs.size(); ++j) {
          t.set(0, j + 1, e.attrs[j]);
        }
        core::SymbolVec row;
        row.push_back(Symbol::Null());
        row.insert(row.end(), e.tuple.begin(), e.tuple.end());
        t.AppendRow(row);
        prelude_.push_back(std::move(t));
        Assignment a;
        a.op = OpKind::kProject;
        a.target = Param::Literal(out);
        a.params.push_back(Param::Wildcard(9));
        a.args.push_back(Param::Literal(cname));
        Emit(std::move(a), sink);
        return Status::OK();
      }
      case RelExpr::Kind::kSelect: {
        Symbol sub = FreshScratch();
        TABULAR_RETURN_NOT_OK(Translate(*e.left, sub, sink));
        Assignment a;
        a.op = OpKind::kSelect;
        a.target = Param::Literal(out);
        a.params.push_back(Param::Literal(e.a));
        a.params.push_back(Param::Literal(e.b));
        a.args.push_back(Param::Literal(sub));
        Emit(std::move(a), sink);
        return Status::OK();
      }
      case RelExpr::Kind::kSelectConst: {
        Symbol sub = FreshScratch();
        TABULAR_RETURN_NOT_OK(Translate(*e.left, sub, sink));
        Assignment a;
        a.op = OpKind::kSelectConst;
        a.target = Param::Literal(out);
        a.params.push_back(Param::Literal(e.a));
        a.params.push_back(Param::Literal(e.v));
        a.args.push_back(Param::Literal(sub));
        Emit(std::move(a), sink);
        return Status::OK();
      }
      case RelExpr::Kind::kProject: {
        Symbol sub = FreshScratch();
        TABULAR_RETURN_NOT_OK(Translate(*e.left, sub, sink));
        Assignment a;
        a.op = OpKind::kProject;
        a.target = Param::Literal(out);
        Param attrs;
        for (Symbol s : e.attrs) {
          lang::ParamItem item;
          item.kind = lang::ParamItem::Kind::kSymbol;
          item.symbol = s;
          attrs.positive.push_back(item);
        }
        a.params.push_back(std::move(attrs));
        a.args.push_back(Param::Literal(sub));
        Emit(std::move(a), sink);
        EmitDedup(out, sink);  // projection may collapse tuples
        return Status::OK();
      }
      case RelExpr::Kind::kRename: {
        Symbol sub = FreshScratch();
        TABULAR_RETURN_NOT_OK(Translate(*e.left, sub, sink));
        Assignment a;
        a.op = OpKind::kRename;
        a.target = Param::Literal(out);
        a.params.push_back(Param::Literal(e.b));  // to
        a.params.push_back(Param::Literal(e.a));  // from
        a.args.push_back(Param::Literal(sub));
        Emit(std::move(a), sink);
        return Status::OK();
      }
      case RelExpr::Kind::kUnion: {
        Symbol l = FreshScratch();
        Symbol r = FreshScratch();
        TABULAR_RETURN_NOT_OK(Translate(*e.left, l, sink));
        TABULAR_RETURN_NOT_OK(Translate(*e.right, r, sink));
        Assignment a;
        a.op = OpKind::kUnion;
        a.target = Param::Literal(out);
        a.args.push_back(Param::Literal(l));
        a.args.push_back(Param::Literal(r));
        Emit(std::move(a), sink);
        // Classical union = tabular union + column purge + dedup (§3.4).
        EmitColumnPurge(out, sink);
        EmitDedup(out, sink);
        return Status::OK();
      }
      case RelExpr::Kind::kDifference: {
        Symbol l = FreshScratch();
        Symbol r = FreshScratch();
        TABULAR_RETURN_NOT_OK(Translate(*e.left, l, sink));
        TABULAR_RETURN_NOT_OK(Translate(*e.right, r, sink));
        Assignment a;
        a.op = OpKind::kDifference;
        a.target = Param::Literal(out);
        a.args.push_back(Param::Literal(l));
        a.args.push_back(Param::Literal(r));
        Emit(std::move(a), sink);
        return Status::OK();
      }
      case RelExpr::Kind::kProduct: {
        Symbol l = FreshScratch();
        Symbol r = FreshScratch();
        TABULAR_RETURN_NOT_OK(Translate(*e.left, l, sink));
        TABULAR_RETURN_NOT_OK(Translate(*e.right, r, sink));
        Assignment a;
        a.op = OpKind::kProduct;
        a.target = Param::Literal(out);
        a.args.push_back(Param::Literal(l));
        a.args.push_back(Param::Literal(r));
        Emit(std::move(a), sink);
        return Status::OK();
      }
    }
    return Status::Internal("unknown expression kind");
  }

  Status TranslateStatements(const std::vector<FoStatement>& statements,
                             std::vector<Statement>* sink) {
    for (const FoStatement& s : statements) {
      switch (s.kind) {
        case FoStatement::Kind::kAssign:
          TABULAR_RETURN_NOT_OK(Translate(*s.expr, s.target, sink));
          break;
        case FoStatement::Kind::kNew: {
          Symbol sub = FreshScratch();
          TABULAR_RETURN_NOT_OK(Translate(*s.expr, sub, sink));
          Assignment a;
          a.op = OpKind::kTupleNew;
          a.target = Param::Literal(s.target);
          a.params.push_back(Param::Literal(s.new_attr));
          a.args.push_back(Param::Literal(sub));
          Emit(std::move(a), sink);
          break;
        }
        case FoStatement::Kind::kWhile: {
          lang::WhileLoop loop;
          loop.condition = Param::Literal(s.condition);
          TABULAR_RETURN_NOT_OK(TranslateStatements(s.body, &loop.body));
          Statement st;
          st.node = std::move(loop);
          sink->push_back(std::move(st));
          break;
        }
      }
    }
    return Status::OK();
  }

 public:
  std::vector<core::Table> TakePrelude() { return std::move(prelude_); }

 private:
  size_t counter_ = 0;
  std::vector<core::Table> prelude_;
};

}  // namespace

Result<FoTranslation> TranslateFoToTabular(const FoProgram& program) {
  FoTranslator translator;
  FoTranslation out;
  TABULAR_RETURN_NOT_OK(translator.TranslateStatements(
      program.statements, &out.program.statements));
  out.prelude_tables = translator.TakePrelude();
  return out;
}

}  // namespace tabular::rel
