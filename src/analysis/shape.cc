#include "analysis/shape.h"

#include <utility>

namespace tabular::analysis {

using core::Symbol;
using core::SymbolSet;
using core::Table;
using core::TabularDatabase;

void AttrSet::Join(const AttrSet& o) {
  if (top) return;
  if (o.top) {
    top = true;
    elems.clear();
    return;
  }
  elems.insert(o.elems.begin(), o.elems.end());
}

std::string AttrSet::ToString() const {
  if (top) return "⊤";
  std::string out = "{";
  bool first = true;
  for (Symbol s : elems) {
    if (!first) out += ", ";
    first = false;
    out += s.ToString();
  }
  out += "}";
  return out;
}

void TableShape::Join(const TableShape& o) {
  cols.Join(o.cols);
  rows.Join(o.rows);
  certain = certain && o.certain;
}

std::string TableShape::ToString() const {
  return "cols=" + cols.ToString() + " rows=" + rows.ToString();
}

AbstractDatabase AbstractDatabase::FromDatabase(const TabularDatabase& db) {
  AbstractDatabase out;
  for (const Table& t : db.tables()) {
    SymbolSet cols, rows;
    for (size_t j = 1; j <= t.width(); ++j) cols.insert(t.ColumnAttribute(j));
    for (size_t i = 1; i <= t.height(); ++i) rows.insert(t.RowAttribute(i));
    TableShape shape{AttrSet::Of(std::move(cols)), AttrSet::Of(std::move(rows)),
                     /*certain=*/true};
    auto [it, inserted] = out.tables.emplace(t.name(), shape);
    if (!inserted) {
      // Same-named tables: join shapes, existence stays certain.
      it->second.cols.Join(shape.cols);
      it->second.rows.Join(shape.rows);
    }
  }
  return out;
}

const TableShape* AbstractDatabase::Find(Symbol name) const {
  auto it = tables.find(name);
  return it == tables.end() ? nullptr : &it->second;
}

TableShape AbstractDatabase::ShapeOf(Symbol name) const {
  const TableShape* s = Find(name);
  if (s != nullptr) return *s;
  return TableShape::Top(/*certain=*/false);
}

void AbstractDatabase::Join(const AbstractDatabase& o) {
  top = top || o.top;
  for (auto& [name, shape] : tables) {
    const TableShape* other = o.Find(name);
    if (other != nullptr) {
      shape.Join(*other);
    } else if (o.top) {
      TableShape t = TableShape::Top(false);
      shape.Join(t);
    } else {
      shape.certain = false;  // absent on the other path
    }
  }
  for (const auto& [name, shape] : o.tables) {
    if (tables.contains(name)) continue;
    TableShape joined = shape;
    if (top) {
      joined.cols = AttrSet::Top();
      joined.rows = AttrSet::Top();
    }
    joined.certain = false;
    tables.emplace(name, std::move(joined));
  }
}

void AbstractDatabase::WildcardWrite() {
  top = true;
  for (auto& [name, shape] : tables) {
    shape.cols = AttrSet::Top();
    shape.rows = AttrSet::Top();
  }
}

std::string AbstractDatabase::ToString() const {
  std::string out;
  if (top) out += "⊤\n";
  for (const auto& [name, shape] : tables) {
    out += name.ToString() + (shape.certain ? "" : "?") + ": " +
           shape.ToString() + "\n";
  }
  return out;
}

}  // namespace tabular::analysis
