#include "analysis/shape.h"

#include <utility>

namespace tabular::analysis {

using core::Symbol;
using core::SymbolSet;
using core::Table;
using core::TabularDatabase;

void AttrSet::Join(const AttrSet& o) {
  if (top) return;
  if (o.top) {
    top = true;
    elems.clear();
    return;
  }
  elems.insert(o.elems.begin(), o.elems.end());
}

bool AttrSet::SubsetOf(const AttrSet& o) const {
  if (o.top) return true;
  if (top) return false;
  for (Symbol s : elems) {
    if (!o.elems.contains(s)) return false;
  }
  return true;
}

std::string AttrSet::ToString() const {
  if (top) return "⊤";
  std::string out = "{";
  bool first = true;
  for (Symbol s : elems) {
    if (!first) out += ", ";
    first = false;
    out += s.ToString();
  }
  out += "}";
  return out;
}

void MustSet::Join(const MustSet& o) {
  std::erase_if(elems, [&](Symbol s) { return !o.elems.contains(s); });
}

bool MustSet::Covers(const MustSet& o) const {
  for (Symbol s : o.elems) {
    if (!elems.contains(s)) return false;
  }
  return true;
}

std::string MustSet::ToString() const {
  if (elems.empty()) return "∅";
  std::string out = "{";
  bool first = true;
  for (Symbol s : elems) {
    if (!first) out += ", ";
    first = false;
    out += s.ToString();
  }
  out += "}";
  return out;
}

uint64_t CardInterval::SatAdd(uint64_t a, uint64_t b) {
  if (a == kInf || b == kInf) return kInf;
  // `a >= kInf - b` (not `>`) so a sum landing *exactly* on the sentinel
  // saturates too: 2^64-1 is indistinguishable from ∞ in this encoding and
  // must never masquerade as an exact finite count.
  return a >= kInf - b ? kInf : a + b;
}

uint64_t CardInterval::SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kInf || b == kInf) return kInf;
  // Saturate when a·b ≥ kInf, i.e. a > ⌊(kInf-1)/b⌋ — this catches both
  // true overflow and an exact landing on the sentinel (kInf is composite:
  // e.g. 3 · 6148914691236517205 == 2^64-1).
  return a > (kInf - 1) / b ? kInf : a * b;
}

namespace {

/// Lower bounds never carry the ∞ sentinel (struct invariant): a saturated
/// lower bound clamps to the largest representable finite count.
uint64_t ClampLo(uint64_t lo) {
  return lo == CardInterval::kInf ? CardInterval::kInf - 1 : lo;
}

}  // namespace

void CardInterval::Join(const CardInterval& o) {
  lo = o.lo < lo ? o.lo : lo;
  hi = o.hi > hi ? o.hi : hi;
}

void CardInterval::Widen(const CardInterval& o) {
  if (o.lo < lo) lo = 0;
  if (o.hi > hi) hi = kInf;
}

CardInterval CardInterval::Plus(const CardInterval& o) const {
  return CardInterval{ClampLo(SatAdd(lo, o.lo)), SatAdd(hi, o.hi)};
}

CardInterval CardInterval::Times(const CardInterval& o) const {
  return CardInterval{ClampLo(SatMul(lo, o.lo)), SatMul(hi, o.hi)};
}

CardInterval CardInterval::PlusConst(uint64_t n) const {
  return CardInterval{ClampLo(SatAdd(lo, n)), SatAdd(hi, n)};
}

std::string CardInterval::ToString() const {
  // Built with += on a constructed string: GCC 12's -Wrestrict
  // false-positives on `"lit" + std::to_string(n)` and on literal
  // assignment through _M_replace (PR105651).
  if (lo == hi) {
    std::string out("=");
    out += std::to_string(lo);
    return out;
  }
  std::string out("[");
  out += std::to_string(lo);
  out += ",";
  if (hi == kInf) {
    out += "∞)";
  } else {
    out += std::to_string(hi);
    out += "]";
  }
  return out;
}

void TableShape::Join(const TableShape& o, bool widen) {
  cols.Join(o.cols);
  rows.Join(o.rows);
  certain = certain && o.certain;
  must_cols.Join(o.must_cols);
  must_rows.Join(o.must_rows);
  if (widen) {
    row_card.Widen(o.row_card);
    col_card.Widen(o.col_card);
    count.Widen(o.count);
  } else {
    row_card.Join(o.row_card);
    col_card.Join(o.col_card);
    count.Join(o.count);
  }
}

std::string TableShape::ToString() const {
  std::string out = "cols=" + cols.ToString() + " rows=" + rows.ToString();
  if (!must_cols.IsTop()) out += " must_cols=" + must_cols.ToString();
  if (!must_rows.IsTop()) out += " must_rows=" + must_rows.ToString();
  if (!row_card.IsTop()) out += " #rows" + row_card.ToString();
  if (!col_card.IsTop()) out += " #cols" + col_card.ToString();
  if (!count.IsTop()) out += " #tables" + count.ToString();
  return out;
}

AbstractDatabase AbstractDatabase::FromDatabase(const TabularDatabase& db) {
  AbstractDatabase out;
  for (const Table& t : db.tables()) {
    SymbolSet cols, rows;
    for (size_t j = 1; j <= t.width(); ++j) cols.insert(t.ColumnAttribute(j));
    for (size_t i = 1; i <= t.height(); ++i) rows.insert(t.RowAttribute(i));
    TableShape shape;
    shape.cols = AttrSet::Of(cols);
    shape.rows = AttrSet::Of(rows);
    shape.certain = true;
    shape.must_cols = MustSet::Of(std::move(cols));
    shape.must_rows = MustSet::Of(std::move(rows));
    shape.row_card = CardInterval::Exact(t.height());
    shape.col_card = CardInterval::Exact(t.width());
    shape.count = CardInterval::Exact(1);
    auto [it, inserted] = out.tables.emplace(t.name(), shape);
    if (!inserted) {
      // Same-named tables: join the per-table facts (existence stays
      // certain), count the extra carrier exactly.
      CardInterval count = it->second.count;
      it->second.Join(shape);
      it->second.certain = true;
      it->second.count = count.PlusConst(1);
    }
  }
  return out;
}

const TableShape* AbstractDatabase::Find(Symbol name) const {
  auto it = tables.find(name);
  return it == tables.end() ? nullptr : &it->second;
}

TableShape AbstractDatabase::ShapeOf(Symbol name) const {
  const TableShape* s = Find(name);
  if (s != nullptr) return *s;
  if (top) return TableShape::Top(/*certain=*/false);
  // Provably absent: the empty pool. Per-table facts hold vacuously; the
  // only informative component is the carrier count.
  TableShape none;
  none.cols = AttrSet::Of({});
  none.rows = AttrSet::Of({});
  none.count = CardInterval::Exact(0);
  return none;
}

void AbstractDatabase::Join(const AbstractDatabase& o, bool widen) {
  top = top || o.top;
  for (auto& [name, shape] : tables) {
    const TableShape* other = o.Find(name);
    if (other != nullptr) {
      shape.Join(*other, widen);
    } else if (o.top) {
      TableShape t = TableShape::Top(false);
      shape.Join(t, widen);
    } else {
      // Absent on the other path: zero carriers there.
      shape.certain = false;
      CardInterval none = CardInterval::Exact(0);
      if (widen) {
        shape.count.Widen(none);
      } else {
        shape.count.Join(none);
      }
    }
  }
  for (const auto& [name, shape] : o.tables) {
    if (tables.contains(name)) continue;
    TableShape joined;
    if (top) {
      // This side may hold the name with an arbitrary shape.
      joined = TableShape::Top(false);
      joined.Join(shape, widen);
    } else {
      joined = shape;
      joined.count.Join(CardInterval::Exact(0));
    }
    joined.certain = false;
    tables.emplace(name, std::move(joined));
  }
}

void AbstractDatabase::WildcardWrite() {
  top = true;
  for (auto& [name, shape] : tables) {
    // Replacement semantics never removes a name, so existence survives;
    // every other fact is lost.
    shape = TableShape::Top(shape.certain);
  }
}

std::string AbstractDatabase::ToString() const {
  std::string out;
  if (top) out += "⊤\n";
  for (const auto& [name, shape] : tables) {
    out += name.ToString() + (shape.certain ? "" : "?") + ": " +
           shape.ToString() + "\n";
  }
  return out;
}

}  // namespace tabular::analysis
