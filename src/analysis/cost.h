#ifndef TABULAR_ANALYSIS_COST_H_
#define TABULAR_ANALYSIS_COST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/shape.h"
#include "lang/ast.h"

namespace tabular::analysis {

/// Static cost/resource-bound analysis over the abstract-shape domain.
///
/// `EstimateCost` walks a program under the same transfer functions the
/// analyzer uses (shapes, cardinality intervals, while-fixpoints with
/// widening) and derives, per statement:
///
///   * `out_rows`  — an upper bound on the total data rows the written
///     pool can hold after the statement (carriers × per-table rows);
///   * `out_bytes` — the corresponding storage bound, rows × data columns
///     × `kCostHandleBytes` (every cell is one interned symbol handle);
///   * `work`      — an abstract-time bound: the operator family's weight
///     × (rows in + rows out + 1), saturating.
///
/// `CardInterval::kInf` in any component means *statically unbounded*.
/// Loop bodies are costed against the widened loop invariant; a loop whose
/// guard cannot be proven to fail within one abstract iteration has an
/// unbounded trip count, so every statement in its body reports unbounded
/// `work` (its row/byte bounds can still be finite — a loop can spin
/// forever over a bounded table). The program-level verdict is
/// `unbounded()` when any statement has an unbounded row, byte, or work
/// bound; `unbounded_path` then names the first offender, which is what
/// tabulard's admission rejection reports to the client.

/// Bytes per stored cell: one 32-bit interned-symbol handle (the columnar
/// chunk layout of src/columnar).
inline constexpr uint64_t kCostHandleBytes = 4;

/// Per-operator-family work weight: abstract cost units per row handled.
/// Calibrated once against the obs OpCounters (`algebra.<op>.{calls,
/// rows_in,rows_out}`) and bench wall-clock on the seed corpus — see
/// DESIGN.md §13 for the calibration table. Relabel-only operators are
/// cheapest; restructuring (GROUP/MERGE/SPLIT/COLLAPSE), row-subsumption
/// (CLEANUP), and the exponential SETNEW are the heavy families.
uint64_t CostWeight(lang::OpKind op);

/// "∞" for the kInf sentinel, the decimal value otherwise.
std::string FormatCost(uint64_t v);

/// One statement's bounds. `path` uses the PR 3 statement-path format
/// ("2", "2.1" for while bodies); drop statements cost constant work and
/// produce nothing; a while statement itself gets no entry — its body
/// statements do (dead bodies, whose guard is provably false at entry,
/// are skipped entirely).
struct StatementCost {
  std::string path;
  lang::OpKind op = lang::OpKind::kUnion;  ///< meaningless for drops
  bool is_drop = false;
  /// Statement sits inside a while loop with no static trip-count bound
  /// (its `work` is therefore kInf).
  bool in_unbounded_loop = false;
  uint64_t out_rows = 0;   ///< pool data-row bound after the statement
  uint64_t out_cols = 0;   ///< per-table data-column bound
  uint64_t out_bytes = 0;  ///< out_rows × out_cols × kCostHandleBytes
  uint64_t work = 0;       ///< weight × (rows_in + rows_out + 1)

  bool unbounded() const {
    return out_rows == CardInterval::kInf ||
           out_bytes == CardInterval::kInf || work == CardInterval::kInf;
  }
};

/// Whole-program cost summary. Peaks are maxima over statements; total
/// work is the saturating sum.
struct CostReport {
  std::vector<StatementCost> statements;
  uint64_t peak_rows = 0;
  uint64_t peak_bytes = 0;
  uint64_t total_work = 0;
  std::string peak_rows_path;   ///< statement achieving peak_rows
  std::string peak_bytes_path;  ///< statement achieving peak_bytes
  /// First statement with an unbounded row/byte/work bound; empty when the
  /// whole program is statically bounded.
  std::string unbounded_path;

  bool unbounded() const { return !unbounded_path.empty(); }
};

/// Costs `program` starting from `initial` (same conventions as
/// `AnalyzeProgram`: `FromDatabase` for a concrete database, `Unknown()`
/// for an open schema — note an open schema makes every read unbounded,
/// so admission-grade estimates need a concrete or empty initial state).
CostReport EstimateCost(const lang::Program& program,
                        const AbstractDatabase& initial);

/// Plan-selection order: lexicographic on (total_work, peak_bytes,
/// statement count). Returns <0 when `a` is strictly cheaper, 0 on ties,
/// >0 otherwise. Unbounded work saturates to kInf, so any bounded plan
/// beats every unbounded one.
int CompareCost(const CostReport& a, const CostReport& b);

}  // namespace tabular::analysis

#endif  // TABULAR_ANALYSIS_COST_H_
