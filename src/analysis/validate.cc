#include "analysis/validate.h"

#include <algorithm>
#include <string>
#include <variant>
#include <vector>

#include "analysis/analyzer.h"

namespace tabular::analysis {

using core::Symbol;
using core::SymbolSet;
using lang::Assignment;
using lang::DropStatement;
using lang::Param;
using lang::ParamItem;
using lang::Program;
using lang::Statement;
using lang::WhileLoop;

// -- Structural statement equality -------------------------------------------

namespace {

bool ParamsEqual(const Param& a, const Param& b);

bool ItemsEqual(const ParamItem& a, const ParamItem& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ParamItem::Kind::kSymbol:
      return a.symbol == b.symbol;
    case ParamItem::Kind::kNull:
      return true;
    case ParamItem::Kind::kWildcard:
      return a.wildcard_id == b.wildcard_id;
    case ParamItem::Kind::kPair:
      if ((a.row == nullptr) != (b.row == nullptr)) return false;
      if ((a.col == nullptr) != (b.col == nullptr)) return false;
      if (a.row != nullptr && !ParamsEqual(*a.row, *b.row)) return false;
      if (a.col != nullptr && !ParamsEqual(*a.col, *b.col)) return false;
      return true;
  }
  return false;
}

bool ItemListsEqual(const std::vector<ParamItem>& a,
                    const std::vector<ParamItem>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!ItemsEqual(a[i], b[i])) return false;
  }
  return true;
}

bool ParamsEqual(const Param& a, const Param& b) {
  return ItemListsEqual(a.positive, b.positive) &&
         ItemListsEqual(a.negative, b.negative);
}

bool ParamListsEqual(const std::vector<Param>& a, const std::vector<Param>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!ParamsEqual(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace

bool StatementsEqual(const Statement& a, const Statement& b) {
  if (a.node.index() != b.node.index()) return false;
  if (const auto* x = std::get_if<Assignment>(&a.node)) {
    const auto& y = std::get<Assignment>(b.node);
    return x->op == y.op && ParamsEqual(x->target, y.target) &&
           ParamListsEqual(x->params, y.params) &&
           ParamListsEqual(x->args, y.args);
  }
  if (const auto* x = std::get_if<DropStatement>(&a.node)) {
    return ParamsEqual(x->target, std::get<DropStatement>(b.node).target);
  }
  const auto& x = std::get<WhileLoop>(a.node);
  const auto& y = std::get<WhileLoop>(b.node);
  if (!ParamsEqual(x.condition, y.condition)) return false;
  if (x.body.size() != y.body.size()) return false;
  for (size_t i = 0; i < x.body.size(); ++i) {
    if (!StatementsEqual(x.body[i], y.body[i])) return false;
  }
  return true;
}

// -- Refinement --------------------------------------------------------------

bool Refines(const TableShape& r, const TableShape& o, std::string* why) {
  auto fail = [&](const std::string& what) {
    if (why != nullptr) *why = what;
    return false;
  };
  // A provably-empty pool on the rewritten side refines any original shape
  // that admits absence: the per-table facts hold vacuously.
  if (r.count.DefinitelyZero()) {
    if (o.certain || !o.count.Contains(0)) {
      return fail("rewritten side is provably absent but the original "
                  "certainly has a table");
    }
    return true;
  }
  if (!r.cols.SubsetOf(o.cols)) {
    return fail("column may-set " + r.cols.ToString() +
                " is not contained in " + o.cols.ToString());
  }
  if (!r.rows.SubsetOf(o.rows)) {
    return fail("row may-set " + r.rows.ToString() + " is not contained in " +
                o.rows.ToString());
  }
  if (!r.must_cols.Covers(o.must_cols)) {
    return fail("must-columns " + r.must_cols.ToString() +
                " lost guarantee " + o.must_cols.ToString());
  }
  if (!r.must_rows.Covers(o.must_rows)) {
    return fail("must-rows " + r.must_rows.ToString() + " lost guarantee " +
                o.must_rows.ToString());
  }
  if (o.certain && !r.certain) {
    return fail("existence is no longer certain");
  }
  if (!r.row_card.WithinOf(o.row_card)) {
    return fail("data-row count " + r.row_card.ToString() +
                " is not contained in " + o.row_card.ToString());
  }
  if (!r.col_card.WithinOf(o.col_card)) {
    return fail("data-column count " + r.col_card.ToString() +
                " is not contained in " + o.col_card.ToString());
  }
  if (!r.count.WithinOf(o.count)) {
    return fail("table count " + r.count.ToString() +
                " is not contained in " + o.count.ToString());
  }
  return true;
}

bool Refines(const AbstractDatabase& r, const AbstractDatabase& o,
             std::string* why) {
  if (r.top && !o.top) {
    if (why != nullptr) {
      *why = "rewritten program may write arbitrary names, original "
             "provably cannot";
    }
    return false;
  }
  SymbolSet names;
  for (const auto& [nm, shape] : r.tables) names.insert(nm);
  for (const auto& [nm, shape] : o.tables) names.insert(nm);
  for (Symbol nm : names) {
    std::string detail;
    if (!Refines(r.ShapeOf(nm), o.ShapeOf(nm), &detail)) {
      if (why != nullptr) {
        *why = "table '" + nm.ToString() + "': " + detail;
      }
      return false;
    }
  }
  return true;
}

// -- The validator -----------------------------------------------------------

namespace {

/// Abstract states of `program` at its sync points: states[k] is the state
/// after the first k top-level statements (states[0] = initial).
std::vector<AbstractDatabase> SyncStates(const Program& program,
                                         const AbstractDatabase& initial) {
  AnalyzerOptions options;
  options.check_dead_stores = false;
  options.record_top_level_states = true;
  AnalysisResult result = AnalyzeProgram(program, initial, options);
  std::vector<AbstractDatabase> states;
  states.reserve(result.top_level_states.size() + 1);
  states.push_back(initial);
  for (AbstractDatabase& s : result.top_level_states) {
    states.push_back(std::move(s));
  }
  return states;
}

}  // namespace

ValidationReport ValidateTranslation(const Program& original,
                                     const Program& rewritten,
                                     const AbstractDatabase& initial) {
  const std::vector<Statement>& orig = original.statements;
  const std::vector<Statement>& rewr = rewritten.statements;

  // The rewrite touched one contiguous top-level region; everything in the
  // longest common structurally-equal prefix and suffix is a sync point
  // where the abstract states must stay in refinement.
  size_t prefix = 0;
  while (prefix < orig.size() && prefix < rewr.size() &&
         StatementsEqual(orig[prefix], rewr[prefix])) {
    ++prefix;
  }
  size_t suffix = 0;
  while (suffix < orig.size() - prefix && suffix < rewr.size() - prefix &&
         StatementsEqual(orig[orig.size() - 1 - suffix],
                         rewr[rewr.size() - 1 - suffix])) {
    ++suffix;
  }

  std::vector<AbstractDatabase> orig_states = SyncStates(original, initial);
  std::vector<AbstractDatabase> rewr_states = SyncStates(rewritten, initial);

  ValidationReport report;
  // Prefix sync points (identical statements from identical entry states
  // give identical abstract states, but checking is cheap and robust),
  // then the rewritten region's exit, then each suffix statement.
  for (size_t k = 0; k <= rewr.size(); ++k) {
    const bool in_region = k > prefix && k < rewr.size() - suffix;
    if (in_region) continue;  // no corresponding original state
    // Exit always maps to the original's exit — even when the rewritten
    // program is a strict prefix of the original (k ≤ prefix there too).
    const size_t ok = k == rewr.size()  ? orig.size()
                      : k <= prefix     ? k
                                        : orig.size() - (rewr.size() - k);
    std::string why;
    if (!Refines(rewr_states[k], orig_states[ok], &why)) {
      report.certified = false;
      report.divergent_path =
          k == rewr.size() ? "exit" : std::to_string(k);
      report.reason =
          "after " + std::to_string(k) + " rewritten statement(s) (original "
          "statement " + std::to_string(ok) + "): " + why;
      return report;
    }
  }
  report.certified = true;
  return report;
}

}  // namespace tabular::analysis
