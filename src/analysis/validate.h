#ifndef TABULAR_ANALYSIS_VALIDATE_H_
#define TABULAR_ANALYSIS_VALIDATE_H_

#include <string>

#include "analysis/shape.h"
#include "lang/ast.h"

namespace tabular::analysis {

/// Translation validation for program rewrites (the optimizer's safety
/// net). Instead of trusting each rewrite rule's hand-written soundness
/// argument, both the original and the rewritten program are run through
/// the abstract interpreter from a common initial `AbstractDatabase`, and
/// the rewrite is certified only when the rewritten program's abstract
/// state *refines* the original's at every synchronization point:
///
///   * at program exit, and
///   * after every top-level statement outside the rewritten region
///     (statements the rewrite did not touch — the longest common
///     structurally-equal prefix and suffix of the two statement lists).
///
/// Refinement `R ⊑ O` means every concrete database `R` admits is admitted
/// by `O`: per table name, may-sets are subsets, must-sets are supersets,
/// certainty is preserved, and all three cardinality intervals are
/// contained. Since the abstract semantics over-approximates the concrete
/// one, certification implies the rewritten program cannot reach any
/// database the original provably could not — the per-rewrite equivalence
/// proof of ISSUE 5 (byte-level equality is separately exercised by tests).

struct ValidationReport {
  bool certified = false;
  /// On failure: the first top-level statement count (of the *rewritten*
  /// program) after which refinement broke — "0" is the shared entry
  /// state, "exit" the final state. Empty when certified.
  std::string divergent_path;
  /// Human-readable failure explanation (empty when certified).
  std::string reason;
};

/// True when shape `r` refines shape `o` (γ(r) ⊆ γ(o) for the pool of
/// tables carrying one name). `why`, if non-null, receives the first
/// violated component on failure.
bool Refines(const TableShape& r, const TableShape& o, std::string* why);

/// Database-level refinement: per-name shape refinement over the union of
/// both name sets, and `r.top ⇒ o.top`.
bool Refines(const AbstractDatabase& r, const AbstractDatabase& o,
             std::string* why);

/// Runs both programs through the abstract interpreter from `initial` and
/// checks refinement at every sync point (see file comment).
ValidationReport ValidateTranslation(const lang::Program& original,
                                     const lang::Program& rewritten,
                                     const AbstractDatabase& initial);

/// Structural equality of statements (used to find the untouched
/// prefix/suffix; implemented here so the analysis library depends only on
/// lang headers).
bool StatementsEqual(const lang::Statement& a, const lang::Statement& b);

}  // namespace tabular::analysis

#endif  // TABULAR_ANALYSIS_VALIDATE_H_
