#include "analysis/cost.h"

#include <algorithm>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "analysis/analyzer.h"
#include "core/symbol.h"

namespace tabular::analysis {

using core::Symbol;
using core::SymbolSet;
using lang::Assignment;
using lang::DropStatement;
using lang::OpKind;
using lang::Program;
using lang::Statement;
using lang::WhileLoop;

uint64_t CostWeight(OpKind op) {
  switch (op) {
    // Relabel-only: no data row is touched.
    case OpKind::kRename:
    case OpKind::kTranspose:
    case OpKind::kSwitch:
      return 1;
    // One linear pass over the rows.
    case OpKind::kSelect:
    case OpKind::kSelectConst:
    case OpKind::kProject:
    case OpKind::kPurge:
    case OpKind::kTupleNew:
      return 2;
    // Concatenation plus a dedup pass.
    case OpKind::kUnion:
      return 3;
    // Pairwise row subsumption across the two operands.
    case OpKind::kDifference:
    case OpKind::kIntersection:
      return 4;
    case OpKind::kProduct:
      return 6;
    // Hash-restructuring families.
    case OpKind::kGroup:
    case OpKind::kMerge:
    case OpKind::kSplit:
    case OpKind::kCollapse:
      return 8;
    // Quadratic row-subsumption within one table.
    case OpKind::kCleanUp:
      return 10;
    // Exponential subset expansion.
    case OpKind::kSetNew:
      return 12;
  }
  return 4;
}

std::string FormatCost(uint64_t v) {
  return v == CardInterval::kInf ? "∞" : std::to_string(v);
}

namespace {

constexpr uint64_t kInf = CardInterval::kInf;

/// Iteration cap for the loop-invariant fixpoint, mirroring
/// `AnalyzerOptions::max_fixpoint_iterations`'s default.
constexpr size_t kMaxFixpointIterations = 64;

/// Post-state of one statement under the analyzer's own transfer
/// (including the while-fixpoint and its guard exit refinement).
AbstractDatabase PostState(const Statement& s, const AbstractDatabase& in) {
  Program one;
  one.statements.push_back(s);
  AnalyzerOptions options;
  options.check_dead_stores = false;
  return AnalyzeProgram(one, in, options).final_state;
}

AbstractDatabase PostStateOfBody(const std::vector<Statement>& body,
                                 const AbstractDatabase& in) {
  Program p;
  p.statements = body;
  AnalyzerOptions options;
  options.check_dead_stores = false;
  return AnalyzeProgram(p, in, options).final_state;
}

/// Upper bound on the total data rows of one pool: carriers × per-table
/// rows.
uint64_t PoolRows(const TableShape& s) {
  return CardInterval::SatMul(s.count.hi, s.row_card.hi);
}

/// Rows reachable through parameter `p` at `state`: the pool-row sum over
/// the literal names it can denote; ∞ for wildcard/pair parameters.
uint64_t ParamRows(const lang::Param& p, const AbstractDatabase& state) {
  SymbolSet names;
  bool universal = false;
  CollectParamNames(p, &names, &universal);
  if (universal) return kInf;
  uint64_t rows = 0;
  for (Symbol n : names) {
    rows = CardInterval::SatAdd(rows, PoolRows(state.ShapeOf(n)));
  }
  return rows;
}

class Walker {
 public:
  explicit Walker(CostReport* report) : report_(report) {}

  /// Costs `stmts` from `state`; paths are `prefix`-qualified. Returns the
  /// post-state of the sequence.
  AbstractDatabase Walk(const std::vector<Statement>& stmts,
                        AbstractDatabase state, const std::string& prefix,
                        bool unbounded_loop) {
    for (size_t i = 0; i < stmts.size(); ++i) {
      const std::string path =
          prefix.empty() ? std::to_string(i + 1)
                         : prefix + "." + std::to_string(i + 1);
      const Statement& s = stmts[i];
      if (const auto* a = std::get_if<Assignment>(&s.node)) {
        state = CostAssignment(*a, s, state, path, unbounded_loop);
      } else if (std::get_if<DropStatement>(&s.node)) {
        // A drop is a metadata update: constant work, nothing produced.
        StatementCost c;
        c.path = path;
        c.is_drop = true;
        c.in_unbounded_loop = unbounded_loop;
        c.work = unbounded_loop ? kInf : 1;
        Push(std::move(c));
        state = PostState(s, state);
      } else {
        state = CostWhile(std::get<WhileLoop>(s.node), s, state, path,
                          unbounded_loop);
      }
    }
    return state;
  }

 private:
  AbstractDatabase CostAssignment(const Assignment& a, const Statement& s,
                                  const AbstractDatabase& state,
                                  const std::string& path,
                                  bool unbounded_loop) {
    AbstractDatabase post = PostState(s, state);
    StatementCost c;
    c.path = path;
    c.op = a.op;
    c.in_unbounded_loop = unbounded_loop;
    uint64_t rows_in = 0;
    for (const lang::Param& arg : a.args) {
      rows_in = CardInterval::SatAdd(rows_in, ParamRows(arg, state));
    }
    c.out_rows = ParamRows(a.target, post);
    SymbolSet names;
    bool universal = false;
    CollectParamNames(a.target, &names, &universal);
    if (universal) {
      c.out_cols = kInf;
    } else {
      for (Symbol n : names) {
        c.out_cols = std::max(c.out_cols, post.ShapeOf(n).col_card.hi);
      }
    }
    c.out_bytes = CardInterval::SatMul(
        c.out_rows, CardInterval::SatMul(c.out_cols, kCostHandleBytes));
    c.work = unbounded_loop
                 ? kInf
                 : CardInterval::SatMul(
                       CostWeight(a.op),
                       CardInterval::SatAdd(
                           CardInterval::SatAdd(rows_in, c.out_rows), 1));
    Push(std::move(c));
    return post;
  }

  AbstractDatabase CostWhile(const WhileLoop& loop, const Statement& s,
                             const AbstractDatabase& state,
                             const std::string& path, bool unbounded_loop) {
    SymbolSet guard;
    bool universal = false;
    CollectParamNames(loop.condition, &guard, &universal);
    if (!GuardDefinitelyFalse(state, guard, universal)) {
      // One abstract body pass separates "at most one iteration" (the
      // guard provably fails afterwards) from an unbounded trip count.
      const AbstractDatabase once = PostStateOfBody(loop.body, state);
      if (GuardDefinitelyFalse(once, guard, universal)) {
        Walk(loop.body, state, path, unbounded_loop);
      } else {
        // Cost the body against the widened loop invariant — the same
        // iterate-and-join the analyzer's while-fixpoint performs.
        AbstractDatabase inv = state;
        bool stable = false;
        for (size_t iter = 0; iter < kMaxFixpointIterations; ++iter) {
          AbstractDatabase next = inv;
          next.Join(PostStateOfBody(loop.body, inv), /*widen=*/true);
          if (next == inv) {
            stable = true;
            break;
          }
          inv = std::move(next);
        }
        if (!stable) inv.WildcardWrite();
        Walk(loop.body, std::move(inv), path, /*unbounded_loop=*/true);
      }
    }
    // Dead body (guard provably false at entry): zero iterations, zero
    // cost, no entries. The loop's post-state always comes from the
    // analyzer so its guard exit refinement applies.
    return PostState(s, state);
  }

  void Push(StatementCost cost) {
    StatementCost& c = report_->statements.emplace_back(std::move(cost));
    if (report_->peak_rows_path.empty() || c.out_rows > report_->peak_rows) {
      report_->peak_rows = c.out_rows;
      report_->peak_rows_path = c.path;
    }
    if (report_->peak_bytes_path.empty() ||
        c.out_bytes > report_->peak_bytes) {
      report_->peak_bytes = c.out_bytes;
      report_->peak_bytes_path = c.path;
    }
    report_->total_work = CardInterval::SatAdd(report_->total_work, c.work);
    if (report_->unbounded_path.empty() && c.unbounded()) {
      report_->unbounded_path = c.path;
    }
  }

  CostReport* report_;
};

}  // namespace

CostReport EstimateCost(const Program& program,
                        const AbstractDatabase& initial) {
  CostReport report;
  Walker walker(&report);
  walker.Walk(program.statements, initial, /*prefix=*/"",
              /*unbounded_loop=*/false);
  return report;
}

int CompareCost(const CostReport& a, const CostReport& b) {
  if (a.total_work != b.total_work) {
    return a.total_work < b.total_work ? -1 : 1;
  }
  if (a.peak_bytes != b.peak_bytes) {
    return a.peak_bytes < b.peak_bytes ? -1 : 1;
  }
  if (a.statements.size() != b.statements.size()) {
    return a.statements.size() < b.statements.size() ? -1 : 1;
  }
  return 0;
}

}  // namespace tabular::analysis
