#ifndef TABULAR_ANALYSIS_ANALYZER_H_
#define TABULAR_ANALYSIS_ANALYZER_H_

#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/shape.h"
#include "core/symbol.h"
#include "lang/ast.h"

namespace tabular::analysis {

/// Static semantic analysis for tabular-algebra programs.
///
/// A forward dataflow pass infers a `TableShape` for every table name
/// through every statement (while bodies iterate to a fixpoint over the
/// join of all iteration counts), and a diagnostic engine reports:
///
///   * arity errors (parameter/argument counts per operation)       [error]
///   * operator contract violations the kernels reject at runtime —
///     GROUP/MERGE/SPLIT/COLLAPSE empty or overlapping sets, by/on
///     attributes provably outside the inferred region  [error when the
///     statement certainly executes, warning otherwise]
///   * use-before-definition of argument tables (the statement is a
///     no-op under the interpreter's semantics)                   [warning]
///   * parameters provably outside the region for the total operators
///     (rename source, project set, σ attributes, cleanup/purge sets)
///                                                                [warning]
///   * union/difference operands with provably disjoint column-attribute
///     sets, product operands with colliding column attributes    [warning]
///   * dead stores: a target fully overwritten before any read    [warning]
///   * while bodies that are unreachable because the guard provably
///     matches no table                                           [warning]
///   * a non-termination heuristic: the guard is never written or
///     dropped inside the loop body                               [warning]
///
/// Shape sets are may-supersets, so "provably" above always means an
/// *absence* argument — membership in an inferred set never triggers a
/// diagnostic by itself. Errors additionally require that the statement
/// certainly executes: it is at the top level (not inside a while body)
/// and all of its argument tables certainly exist.
struct AnalyzerOptions {
  /// Emit dead-store warnings (the fact computation itself is always
  /// available through `DeadStoreKeepMask`).
  bool check_dead_stores = true;
  /// Iteration cap for the while-body fixpoint before widening to ⊤.
  size_t max_fixpoint_iterations = 64;
  /// Record the abstract state after every *top-level* statement in
  /// `AnalysisResult::top_level_states` (the translation validator's sync
  /// points).
  bool record_top_level_states = false;
};

struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;
  /// The abstract database after the whole program.
  AbstractDatabase final_state;
  /// With `record_top_level_states`: state after top-level statement i
  /// (so `top_level_states[k-1]` is the state "after k statements").
  std::vector<AbstractDatabase> top_level_states;
};

/// Analyzes `program` starting from `initial` (use
/// `AbstractDatabase::FromDatabase` for a concrete database,
/// `::Unknown()` when the schema is open, `::Empty()` for a fresh run).
AnalysisResult AnalyzeProgram(const lang::Program& program,
                              AbstractDatabase initial,
                              const AnalyzerOptions& options = {});

// -- Guard facts (shared with lang::Optimizer) ------------------------------

/// The interpreter enters a while body when some table named in the guard
/// has at least one data row. These two predicates are the optimizer's
/// cardinality-domain justification for loop elimination / unrolling; both
/// return false for a universal (wildcard) guard.
///
/// Definitely false: every guard name is provably absent, or provably has
/// zero carriers or zero data rows.
bool GuardDefinitelyFalse(const AbstractDatabase& state,
                          const core::SymbolSet& guard, bool guard_universal);

/// Certainly true: some guard name certainly exists with at least one
/// carrier and at least one data row on every run.
bool GuardCertainlyTrue(const AbstractDatabase& state,
                        const core::SymbolSet& guard);

// -- Name-flow facts (shared with lang::Optimizer) --------------------------

/// Collects the literal names `p` can denote; sets `*universal` when it
/// may denote arbitrary names (wildcards, entry pairs). The negative list
/// only narrows, so ignoring it stays conservative.
void CollectParamNames(const lang::Param& p, core::SymbolSet* out,
                       bool* universal);

/// The table names a statement reads (argument positions and while
/// conditions only — attribute parameters never name tables).
void CollectStatementReads(const lang::Statement& s, core::SymbolSet* out,
                           bool* universal);

/// Every table name the program mentions (reads, writes, drops).
core::SymbolSet AllTableNames(const lang::Program& program);

/// The dead-store fact: `mask[i]` is false when top-level statement i is
/// an assignment whose target cannot influence any `live_out` table — no
/// later statement reads it before it is fully reassigned. This is the
/// exact removal criterion of `lang::EliminateDeadStores`; the analyzer's
/// dead-store *warnings* use `live_out = AllTableNames(program)`, which
/// narrows the fact to "overwritten before any read".
std::vector<bool> DeadStoreKeepMask(const lang::Program& program,
                                    const core::SymbolSet& live_out);

}  // namespace tabular::analysis

#endif  // TABULAR_ANALYSIS_ANALYZER_H_
