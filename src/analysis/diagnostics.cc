#include "analysis/diagnostics.h"

namespace tabular::analysis {

const char* SeverityToString(Severity s) {
  switch (s) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Render(const Diagnostic& d, std::string_view file) {
  std::string out(file.empty() ? "<program>" : file);
  if (!d.path.empty()) out += ":" + d.path;
  out += ": ";
  out += SeverityToString(d.severity);
  out += ": ";
  out += d.message;
  if (!d.note.empty()) {
    out += "\n  note: " + d.note;
  }
  return out;
}

std::string RenderAll(const std::vector<Diagnostic>& ds,
                      std::string_view file) {
  std::string out;
  for (const Diagnostic& d : ds) {
    out += Render(d, file);
    out += "\n";
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[c >> 4];
          out += kHex[c & 0xf];
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string RenderJson(const Diagnostic& d, std::string_view file) {
  std::string out = "{\"file\":\"" + JsonEscape(file) + "\"";
  out += ",\"severity\":\"";
  out += SeverityToString(d.severity);
  out += "\",\"path\":\"" + JsonEscape(d.path) + "\"";
  out += ",\"message\":\"" + JsonEscape(d.message) + "\"";
  if (!d.note.empty()) {
    out += ",\"note\":\"" + JsonEscape(d.note) + "\"";
  }
  out += "}";
  return out;
}

size_t CountSeverity(const std::vector<Diagnostic>& ds, Severity s) {
  size_t n = 0;
  for (const Diagnostic& d : ds) {
    if (d.severity == s) ++n;
  }
  return n;
}

bool HasErrors(const std::vector<Diagnostic>& ds) {
  return FirstError(ds) != nullptr;
}

bool PathLess(const std::string& a, const std::string& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    unsigned long long x = 0, y = 0;
    while (i < a.size() && a[i] != '.') x = x * 10 + (a[i++] - '0');
    while (j < b.size() && b[j] != '.') y = y * 10 + (b[j++] - '0');
    if (x != y) return x < y;
    if (i < a.size()) ++i;  // skip '.'
    if (j < b.size()) ++j;
  }
  return a.size() - i < b.size() - j;  // shorter (outer) path first
}

const Diagnostic* FirstError(const std::vector<Diagnostic>& ds) {
  for (const Diagnostic& d : ds) {
    if (d.severity == Severity::kError) return &d;
  }
  return nullptr;
}

}  // namespace tabular::analysis
