#ifndef TABULAR_ANALYSIS_DIAGNOSTICS_H_
#define TABULAR_ANALYSIS_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace tabular::analysis {

/// Severity of a static-analysis finding.
///
/// * `kError` — the statement provably misbehaves on every run that
///   reaches it (the interpreter would fail; `analyze_first` aborts
///   before any mutation).
/// * `kWarning` — the statement is suspicious but may be intended (no-op
///   reads of absent tables, dead stores, possible non-termination).
enum class Severity {
  kWarning = 0,
  kError = 1,
};

const char* SeverityToString(Severity s);  // "warning" / "error"

/// One finding, anchored to a statement path in the format PR 3
/// introduced for profiles and Status annotation: top-level statements
/// are "1", "2", ...; while bodies nest as "2.1", "2.1.3", ... An empty
/// path anchors to the whole program.
struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string path;     ///< statement path ("2.1"); empty = whole program
  std::string message;  ///< one line, no trailing period
  std::string note;     ///< optional secondary line (inferred shapes, ...)
};

/// Clang-style rendering: `<file>:<path>: <severity>: <message>` plus an
/// indented `note: ...` when present. `file` may be empty ("<program>").
std::string Render(const Diagnostic& d, std::string_view file);

/// All diagnostics, one per line (notes indented), in order.
std::string RenderAll(const std::vector<Diagnostic>& ds,
                      std::string_view file);

/// JSON string escaping (quotes, backslashes, control characters; other
/// UTF-8 passes through verbatim). Exposed for the tools' JSON emitters.
std::string JsonEscape(std::string_view s);

/// One diagnostic as a single-line JSON object:
/// `{"file":…,"severity":…,"path":…,"message":…}` plus `"note"` when
/// present. Machine-readable counterpart of `Render` (tabular_lint
/// --json).
std::string RenderJson(const Diagnostic& d, std::string_view file);

size_t CountSeverity(const std::vector<Diagnostic>& ds, Severity s);
bool HasErrors(const std::vector<Diagnostic>& ds);

/// Orders statement paths numerically segment by segment ("2" < "10",
/// "2.1" < "2.2" < "3"); an empty path sorts first.
bool PathLess(const std::string& a, const std::string& b);

/// The first error, or nullptr.
const Diagnostic* FirstError(const std::vector<Diagnostic>& ds);

}  // namespace tabular::analysis

#endif  // TABULAR_ANALYSIS_DIAGNOSTICS_H_
