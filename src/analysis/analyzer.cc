#include "analysis/analyzer.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace tabular::analysis {

using core::Symbol;
using core::SymbolSet;
using lang::Assignment;
using lang::DropStatement;
using lang::OpKind;
using lang::Param;
using lang::ParamItem;
using lang::Program;
using lang::Statement;
using lang::WhileLoop;

namespace {

/// Surface keyword per operation. Mirrors lang::OpKindToString; duplicated
/// here so the analysis library depends only on lang *headers* (keeping the
/// layering acyclic: core ← analysis ← lang).
const char* OpWord(OpKind op) {
  switch (op) {
    case OpKind::kUnion: return "union";
    case OpKind::kDifference: return "difference";
    case OpKind::kIntersection: return "intersection";
    case OpKind::kProduct: return "product";
    case OpKind::kRename: return "rename";
    case OpKind::kProject: return "project";
    case OpKind::kSelect: return "select";
    case OpKind::kSelectConst: return "selectconst";
    case OpKind::kGroup: return "group";
    case OpKind::kMerge: return "merge";
    case OpKind::kSplit: return "split";
    case OpKind::kCollapse: return "collapse";
    case OpKind::kTranspose: return "transpose";
    case OpKind::kSwitch: return "switch";
    case OpKind::kCleanUp: return "cleanup";
    case OpKind::kPurge: return "purge";
    case OpKind::kTupleNew: return "tuplenew";
    case OpKind::kSetNew: return "setnew";
  }
  return "?";
}

/// Interpreter arity contracts (mirrors lang/interpreter.cc, which checks
/// them before enumerating argument combinations).
size_t ExpectedParamCount(OpKind op) {
  switch (op) {
    case OpKind::kUnion:
    case OpKind::kDifference:
    case OpKind::kIntersection:
    case OpKind::kProduct:
    case OpKind::kTranspose:
      return 0;
    case OpKind::kProject:
    case OpKind::kSplit:
    case OpKind::kCollapse:
    case OpKind::kSwitch:
    case OpKind::kTupleNew:
    case OpKind::kSetNew:
      return 1;
    default:
      return 2;
  }
}

size_t ExpectedArgCount(OpKind op) {
  switch (op) {
    case OpKind::kUnion:
    case OpKind::kDifference:
    case OpKind::kIntersection:
    case OpKind::kProduct:
      return 2;
    default:
      return 1;
  }
}

/// Abstract interpretation of a parameter, relative to the wildcard ids the
/// statement's argument positions bind.
struct AbsParam {
  enum class Kind {
    kKnown,          ///< denotes exactly `elems`
    kUniverseMinus,  ///< the whole column universe of the context minus `elems`
    kUnknown,        ///< bound wildcard or entry pair: anything
  };
  Kind kind = Kind::kUnknown;
  SymbolSet elems;

  bool known() const { return kind == Kind::kKnown; }
  std::optional<Symbol> Singleton() const {
    if (kind == Kind::kKnown && elems.size() == 1) return *elems.begin();
    return std::nullopt;
  }
};

void CollectWildcardIds(const Param& p, std::vector<int>* out);

void CollectItemWildcardIds(const ParamItem& it, std::vector<int>* out) {
  switch (it.kind) {
    case ParamItem::Kind::kWildcard:
      out->push_back(it.wildcard_id);
      break;
    case ParamItem::Kind::kPair:
      if (it.row != nullptr) CollectWildcardIds(*it.row, out);
      if (it.col != nullptr) CollectWildcardIds(*it.col, out);
      break;
    default:
      break;
  }
}

void CollectWildcardIds(const Param& p, std::vector<int>* out) {
  for (const ParamItem& it : p.positive) CollectItemWildcardIds(it, out);
  for (const ParamItem& it : p.negative) CollectItemWildcardIds(it, out);
}

/// Literal symbol set of a positive/negative item list, or nullopt if some
/// item is a wildcard or pair.
std::optional<SymbolSet> LiteralItems(const std::vector<ParamItem>& items) {
  SymbolSet out;
  for (const ParamItem& it : items) {
    switch (it.kind) {
      case ParamItem::Kind::kSymbol:
        out.insert(it.symbol);
        break;
      case ParamItem::Kind::kNull:
        out.insert(Symbol::Null());
        break;
      default:
        return std::nullopt;
    }
  }
  return out;
}

AbsParam EvalAbstract(const Param& p, const std::vector<int>& bound_ids) {
  std::optional<SymbolSet> neg = LiteralItems(p.negative);
  if (neg.has_value()) {
    std::optional<SymbolSet> pos = LiteralItems(p.positive);
    if (pos.has_value()) {
      SymbolSet elems = *pos;
      for (Symbol s : *neg) elems.erase(s);
      return AbsParam{AbsParam::Kind::kKnown, std::move(elems)};
    }
    // An *unbound* wildcard in an attribute position denotes the whole
    // column universe of the context table (lang::EvalParam).
    if (p.positive.size() == 1 &&
        p.positive[0].kind == ParamItem::Kind::kWildcard &&
        std::find(bound_ids.begin(), bound_ids.end(),
                  p.positive[0].wildcard_id) == bound_ids.end()) {
      return AbsParam{AbsParam::Kind::kUniverseMinus, std::move(*neg)};
    }
  }
  return AbsParam{AbsParam::Kind::kUnknown, {}};
}

/// The sole-wildcard item of a parameter, if it is exactly `*k`.
const ParamItem* SoleWildcard(const Param& p) {
  if (p.positive.size() == 1 && p.negative.empty() &&
      p.positive[0].kind == ParamItem::Kind::kWildcard) {
    return &p.positive[0];
  }
  return nullptr;
}

std::string Quoted(Symbol s) { return "'" + s.ToString() + "'"; }

std::string SetToString(const SymbolSet& s) {
  std::string out = "{";
  bool first = true;
  for (Symbol x : s) {
    if (!first) out += ", ";
    first = false;
    out += x.ToString();
  }
  return out + "}";
}

// ---------------------------------------------------------------------------
// The forward dataflow pass.
// ---------------------------------------------------------------------------

class Analyzer {
 public:
  Analyzer(const AnalyzerOptions& options, std::vector<Diagnostic>* sink,
           std::vector<AbstractDatabase>* top_level_states = nullptr)
      : options_(options), sink_(sink), states_(top_level_states) {}

  void AnalyzeStatements(const std::vector<Statement>& statements,
                         const std::string& path_prefix,
                         AbstractDatabase* state, bool certain_context) {
    for (size_t i = 0; i < statements.size(); ++i) {
      const std::string path = path_prefix + std::to_string(i + 1);
      const Statement& s = statements[i];
      if (const auto* a = std::get_if<Assignment>(&s.node)) {
        AnalyzeAssignment(*a, path, state, certain_context);
      } else if (const auto* d = std::get_if<DropStatement>(&s.node)) {
        AnalyzeDrop(*d, state);
      } else {
        AnalyzeWhile(std::get<WhileLoop>(s.node), path, state,
                     certain_context);
      }
      if (states_ != nullptr && path_prefix.empty()) {
        states_->push_back(*state);
      }
    }
  }

 private:
  void Emit(Severity severity, const std::string& path, std::string message,
            std::string note = "") {
    if (!emit_) return;
    sink_->push_back(Diagnostic{severity, path, std::move(message),
                                std::move(note)});
  }

  /// Error when the violation provably happens on every run reaching the
  /// statement; warning when the statement may not execute (inside a while
  /// body, or an argument table only may-exist).
  static Severity Sev(bool definite) {
    return definite ? Severity::kError : Severity::kWarning;
  }

  void AnalyzeDrop(const DropStatement& d, AbstractDatabase* state) {
    SymbolSet names;
    bool universal = false;
    CollectParamNames(d.target, &names, &universal);
    if (universal) {
      // A wildcard drop may remove anything: existence is no longer
      // certain for any name, and any pool may have shrunk to nothing
      // (shapes stay valid may-supersets).
      for (auto& [nm, shape] : state->tables) {
        shape.certain = false;
        shape.count.lo = 0;
      }
      return;
    }
    for (Symbol nm : names) state->tables.erase(nm);
  }

  void AnalyzeWhile(const WhileLoop& loop, const std::string& path,
                    AbstractDatabase* state, bool certain_context) {
    SymbolSet guard;
    bool guard_universal = false;
    CollectParamNames(loop.condition, &guard, &guard_universal);

    if (!guard_universal && !guard.empty()) {
      bool any_may_exist = false;
      for (Symbol g : guard) any_may_exist |= state->MayExist(g);
      if (!any_may_exist) {
        Emit(Severity::kWarning, path,
             "while body is unreachable: guard " + GuardNames(guard) +
                 " matches no table defined at this point");
        return;  // the loop is skipped; the body never runs
      }
      if (GuardDefinitelyFalse(*state, guard, guard_universal)) {
        Emit(Severity::kWarning, path,
             "while body is unreachable: every table matching guard " +
                 GuardNames(guard) + " provably has no data rows");
        return;  // the guard is false on entry; the body never runs
      }
    }

    // Non-termination heuristic: nothing in the body writes or drops a
    // guard table, so once entered the loop can never become empty.
    if (!guard_universal && !guard.empty()) {
      SymbolSet writes;
      bool writes_universal = false;
      CollectBodyWrites(loop.body, &writes, &writes_universal);
      bool touches_guard = writes_universal;
      for (Symbol g : guard) touches_guard |= writes.contains(g);
      if (!touches_guard) {
        Emit(Severity::kWarning, path,
             "while guard " + GuardNames(guard) +
                 " is never written or dropped in the loop body; the loop "
                 "may not terminate",
             "statements after this loop may be unreachable");
      }
    }

    // Fixpoint over the join of all iteration counts (0, 1, 2, ...);
    // diagnostics are suppressed while iterating, then one labeled pass
    // runs over the stabilized state. Joins *widen* the cardinality
    // intervals, so row counts that grow (or shrink) every iteration jump
    // to an interval end instead of creeping toward the iteration cap.
    AbstractDatabase loop_state = *state;
    const bool saved_emit = emit_;
    emit_ = false;
    for (size_t iter = 0;; ++iter) {
      if (iter >= options_.max_fixpoint_iterations) {
        loop_state.WildcardWrite();  // widen to ⊤
        break;
      }
      AbstractDatabase body_out = loop_state;
      AnalyzeStatements(loop.body, path + ".", &body_out, false);
      AbstractDatabase joined = loop_state;
      joined.Join(body_out, /*widen=*/true);
      if (joined == loop_state) break;
      loop_state = std::move(joined);
    }
    emit_ = saved_emit;
    if (emit_) {
      AbstractDatabase scratch = loop_state;
      AnalyzeStatements(loop.body, path + ".", &scratch,
                        /*certain_context=*/false);
    }
    (void)certain_context;
    // Exit refinement: the loop only exits when no guard table has data
    // rows, so every surviving carrier of a literal guard name is provably
    // empty (and can carry no row attributes).
    if (!guard_universal) {
      for (Symbol g : guard) {
        auto it = loop_state.tables.find(g);
        if (it == loop_state.tables.end()) continue;
        it->second.rows = AttrSet::Of({});
        it->second.must_rows = MustSet::Top();
        it->second.row_card = CardInterval::Exact(0);
      }
    }
    *state = std::move(loop_state);
  }

  static std::string GuardNames(const SymbolSet& guard) {
    std::string out;
    bool first = true;
    for (Symbol g : guard) {
      if (!first) out += ", ";
      first = false;
      out += Quoted(g);
    }
    return out;
  }

  static void CollectBodyWrites(const std::vector<Statement>& body,
                                SymbolSet* out, bool* universal) {
    for (const Statement& s : body) {
      if (const auto* a = std::get_if<Assignment>(&s.node)) {
        CollectParamNames(a->target, out, universal);
      } else if (const auto* d = std::get_if<DropStatement>(&s.node)) {
        CollectParamNames(d->target, out, universal);
      } else {
        CollectBodyWrites(std::get<WhileLoop>(s.node).body, out, universal);
      }
    }
  }

  void AnalyzeAssignment(const Assignment& stmt, const std::string& path,
                         AbstractDatabase* state, bool certain_context) {
    // Arity first — the interpreter rejects these before enumerating
    // argument combinations, so they are definite regardless of state.
    if (stmt.params.size() != ExpectedParamCount(stmt.op)) {
      Emit(Severity::kError, path,
           std::string(OpWord(stmt.op)) + " expects " +
               std::to_string(ExpectedParamCount(stmt.op)) +
               " parameter(s), got " + std::to_string(stmt.params.size()));
      return;
    }
    if (stmt.args.size() != ExpectedArgCount(stmt.op)) {
      Emit(Severity::kError, path,
           std::string(OpWord(stmt.op)) + " expects " +
               std::to_string(ExpectedArgCount(stmt.op)) +
               " argument(s), got " + std::to_string(stmt.args.size()));
      return;
    }

    // Wildcard ids bound during argument enumeration: params mentioning
    // them denote table names, not attribute sets.
    std::vector<int> bound_ids;
    for (const Param& arg : stmt.args) CollectWildcardIds(arg, &bound_ids);

    std::vector<AbsParam> params;
    params.reserve(stmt.params.size());
    for (const Param& p : stmt.params) {
      params.push_back(EvalAbstract(p, bound_ids));
    }

    // Resolve arguments: literal single names are precise; anything else
    // (wildcards, multi-name parameters) degrades to unknown shapes.
    std::vector<std::optional<Symbol>> arg_names;
    bool args_all_literal = true;
    for (const Param& arg : stmt.args) {
      AbsParam a = EvalAbstract(arg, {});
      std::optional<Symbol> nm = a.Singleton();
      arg_names.push_back(nm);
      args_all_literal &= nm.has_value();
    }

    // The self-wildcard idiom `*k <- op (*k[, *k])`: every table is
    // rewritten in place, name-preserving. Apply the transfer per name.
    const ParamItem* target_star = SoleWildcard(stmt.target);
    if (target_star != nullptr) {
      bool self = !stmt.args.empty();
      for (const Param& arg : stmt.args) {
        const ParamItem* star = SoleWildcard(arg);
        self &= star != nullptr && star->wildcard_id == target_star->wildcard_id;
      }
      if (self) {
        const bool binary = ExpectedArgCount(stmt.op) == 2;
        for (auto& [nm, shape] : state->tables) {
          // A binary self-application pairs carriers of the *same* name.
          TableShape out = ApplyOp(stmt.op, params, shape, &shape,
                                   /*same_single_arg=*/binary);
          out.certain = shape.certain;
          if (binary) {
            out.count = shape.count.Times(shape.count);
          } else if (stmt.op == OpKind::kCollapse) {
            out.count = CardInterval::Range(shape.count.lo >= 1 ? 1 : 0, 1);
          } else if (stmt.op != OpKind::kSplit) {
            out.count = shape.count;
          }
          if (stmt.op == OpKind::kSplit) {
            // Staging zero tables leaves the old pool in place.
            out.count = SplitCount(shape);
            shape.Join(out);
          } else {
            shape = out;
          }
        }
        return;
      }
    }

    // Use-before-definition: a literal argument naming no table makes the
    // whole statement a no-op (zero instantiations) — diagnose and leave
    // the state untouched.
    bool any_definitely_absent = false;
    for (size_t i = 0; i < stmt.args.size(); ++i) {
      if (arg_names[i].has_value() &&
          state->DefinitelyAbsent(*arg_names[i])) {
        any_definitely_absent = true;
        Emit(Severity::kWarning, path,
             "argument table " + Quoted(*arg_names[i]) +
                 " is not defined at this point; the statement has no "
                 "effect");
      }
    }
    if (any_definitely_absent) return;

    // Input shapes and execution certainty.
    TableShape in1 = TableShape::Top(false);
    TableShape in2 = TableShape::Top(false);
    bool args_certain = certain_context;
    if (args_all_literal) {
      in1 = state->ShapeOf(*arg_names[0]);
      args_certain &= in1.certain;
      if (arg_names.size() > 1) {
        in2 = state->ShapeOf(*arg_names[1]);
        args_certain &= in2.certain;
      }
    } else {
      args_certain = false;
    }

    CheckOperation(stmt, path, params, arg_names, in1, in2, args_certain);

    const bool binary = stmt.args.size() == 2;
    const bool same_single_arg =
        binary && args_all_literal && *arg_names[0] == *arg_names[1];
    TableShape out = ApplyOp(stmt.op, params, in1, &in2, same_single_arg);

    // How many tables an *executed* statement stages under the target name:
    // one per instantiation (the cross product of the argument pools),
    // except COLLAPSE (one per name) and SPLIT (one per value combination).
    if (stmt.op == OpKind::kCollapse) {
      out.count = CardInterval::Range(in1.count.lo >= 1 ? 1 : 0, 1);
    } else if (stmt.op == OpKind::kSplit) {
      out.count = SplitCount(in1);
    } else if (binary) {
      out.count = in1.count.Times(in2.count);
    } else {
      out.count = in1.count;
    }

    // Write the target.
    std::optional<Symbol> target = EvalAbstract(stmt.target, {}).Singleton();
    if (!target.has_value()) {
      // A wildcard or pair target may write arbitrary names.
      state->WildcardWrite();
      return;
    }
    // SPLIT may stage zero tables (no data rows), leaving the old target
    // in place; all other operations produce exactly one table per
    // instantiation, so a certainly-instantiated statement certainly
    // replaces its target.
    const bool always_writes = args_certain && stmt.op != OpKind::kSplit &&
                               args_all_literal;
    if (always_writes) {
      out.certain = true;
      state->tables[*target] = std::move(out);
      return;
    }
    // The statement may stage nothing (an argument pool may be empty, or
    // SPLIT may find no data rows), in which case the old pool survives:
    // join the executed outcome into whatever was there.
    out.certain = true;  // join keeps the existing certainty bit
    auto it = state->tables.find(*target);
    if (it != state->tables.end()) {
      it->second.Join(out);
    } else {
      TableShape entry;
      if (state->top) {
        // Under ⊤ the name may already exist with an arbitrary shape.
        entry = TableShape::Top(false);
        entry.Join(out);
      } else {
        entry = std::move(out);
        entry.count.Join(CardInterval::Exact(0));  // may not have executed
      }
      entry.certain = false;
      state->tables.emplace(*target, std::move(entry));
    }
  }

  // -- Per-operation contract checks ---------------------------------------

  void CheckOperation(const Assignment& stmt, const std::string& path,
                      const std::vector<AbsParam>& params,
                      const std::vector<std::optional<Symbol>>& arg_names,
                      const TableShape& in1, const TableShape& in2,
                      bool definite) {
    const std::string arg0 =
        arg_names[0].has_value() ? Quoted(*arg_names[0]) : "the argument";
    const std::string cols_note =
        in1.cols.top ? ""
                     : "inferred columns of " + arg0 + ": " +
                           in1.cols.ToString();
    const std::string rows_note =
        in1.rows.top ? ""
                     : "inferred rows of " + arg0 + ": " + in1.rows.ToString();

    switch (stmt.op) {
      case OpKind::kGroup:
        CheckGroupLike(path, "group", "by", "on", params[0], params[1], in1,
                       arg0, cols_note, definite,
                       /*by_is_rows=*/false);
        break;
      case OpKind::kMerge:
        // merge on ℬ by 𝒜: 'on' attributes must label columns; 'by'
        // attributes must name rows.
        CheckNonEmpty(path, "merge", "on", params[0], definite);
        CheckNonEmpty(path, "merge", "by", params[1], definite);
        CheckAllLabelColumns(path, "merge", "on", params[0], in1, arg0,
                             cols_note, definite);
        CheckEachNamesRow(path, "merge", "by", params[1], in1, arg0,
                          rows_note, definite);
        break;
      case OpKind::kSplit:
        CheckNonEmpty(path, "split", "on", params[0], definite);
        CheckEachLabelsColumn(path, "split", "on", params[0], in1, arg0,
                              cols_note, Sev(definite));
        break;
      case OpKind::kCollapse:
        CheckNonEmpty(path, "collapse", "by", params[0], definite);
        CheckEachNamesRow(path, "collapse", "by", params[0], in1, arg0,
                          rows_note, definite);
        break;
      case OpKind::kCleanUp:
        // Total at runtime: out-of-region sets are warnings.
        CheckEachLabelsColumn(path, "cleanup", "by", params[0], in1, arg0,
                              cols_note, Severity::kWarning);
        CheckEachNamesRowWarn(path, "cleanup", "on", params[1], in1, arg0,
                              rows_note);
        break;
      case OpKind::kPurge:
        CheckEachLabelsColumn(path, "purge", "on", params[0], in1, arg0,
                              cols_note, Severity::kWarning);
        CheckEachNamesRowWarn(path, "purge", "by", params[1], in1, arg0,
                              rows_note);
        break;
      case OpKind::kRename: {
        CheckSingleton(path, "rename", "target attribute", params[0],
                       definite);
        CheckSingleton(path, "rename", "source attribute", params[1],
                       definite);
        std::optional<Symbol> from = params[1].Singleton();
        if (from.has_value() && in1.cols.DefinitelyLacks(*from)) {
          Emit(Severity::kWarning, path,
               "rename source attribute " + Quoted(*from) +
                   " labels no column of " + arg0 +
                   "; the rename has no effect",
               cols_note);
        }
        break;
      }
      case OpKind::kProject:
        if (params[0].known()) {
          for (Symbol a : params[0].elems) {
            if (in1.cols.DefinitelyLacks(a)) {
              Emit(Severity::kWarning, path,
                   "project attribute " + Quoted(a) +
                       " labels no column of " + arg0,
                   cols_note);
            }
          }
        }
        break;
      case OpKind::kSelect:
      case OpKind::kSelectConst: {
        const char* word = OpWord(stmt.op);
        CheckSingleton(path, word, "attribute", params[0], definite);
        if (stmt.op == OpKind::kSelect) {
          CheckSingleton(path, word, "attribute", params[1], definite);
        } else {
          CheckSingleton(path, word, "value", params[1], definite);
        }
        std::optional<Symbol> a = params[0].Singleton();
        if (a.has_value() && in1.cols.DefinitelyLacks(*a)) {
          Emit(Severity::kWarning, path,
               std::string(word) + " attribute " + Quoted(*a) +
                   " labels no column of " + arg0,
               cols_note);
        }
        if (stmt.op == OpKind::kSelect) {
          std::optional<Symbol> b = params[1].Singleton();
          if (b.has_value() && in1.cols.DefinitelyLacks(*b)) {
            Emit(Severity::kWarning, path,
                 "select attribute " + Quoted(*b) + " labels no column of " +
                     arg0,
                 cols_note);
          }
        }
        break;
      }
      case OpKind::kSwitch:
        CheckSingleton(path, "switch", "value", params[0], definite);
        break;
      case OpKind::kTupleNew:
      case OpKind::kSetNew:
        CheckSingleton(path, OpWord(stmt.op), "attribute", params[0],
                       definite);
        break;
      case OpKind::kProduct: {
        if (!arg_names[0].has_value() || !arg_names[1].has_value()) break;
        if (in1.cols.top || in2.cols.top) break;
        SymbolSet shared;
        for (Symbol a : in1.cols.elems) {
          if (!a.is_null() && in2.cols.elems.contains(a)) shared.insert(a);
        }
        if (!shared.empty()) {
          Emit(Severity::kWarning, path,
               "product operands " + Quoted(*arg_names[0]) + " and " +
                   Quoted(*arg_names[1]) + " share column attribute(s) " +
                   SetToString(shared) +
                   "; the result carries duplicate columns");
        }
        break;
      }
      case OpKind::kUnion:
      case OpKind::kDifference:
      case OpKind::kIntersection: {
        if (!arg_names[0].has_value() || !arg_names[1].has_value()) break;
        if (in1.cols.top || in2.cols.top) break;
        if (in1.cols.elems.empty() || in2.cols.elems.empty()) break;
        bool disjoint = true;
        for (Symbol a : in1.cols.elems) {
          if (in2.cols.elems.contains(a)) disjoint = false;
        }
        if (disjoint) {
          Emit(Severity::kWarning, path,
               std::string(OpWord(stmt.op)) + " operands " +
                   Quoted(*arg_names[0]) + " and " + Quoted(*arg_names[1]) +
                   " have provably disjoint column-attribute sets",
               "columns of " + Quoted(*arg_names[0]) + ": " +
                   in1.cols.ToString() + "; columns of " +
                   Quoted(*arg_names[1]) + ": " + in2.cols.ToString());
        }
        break;
      }
      case OpKind::kTranspose:
        break;
    }
  }

  void CheckNonEmpty(const std::string& path, const char* op,
                     const char* which, const AbsParam& p, bool definite) {
    if (p.known() && p.elems.empty()) {
      Emit(Sev(definite), path,
           std::string(op) + " '" + which + "' set is empty");
    }
  }

  void CheckSingleton(const std::string& path, const char* op,
                      const char* what, const AbsParam& p, bool definite) {
    if (p.known() && p.elems.size() != 1) {
      Emit(Sev(definite), path,
           std::string(op) + " " + what + " must denote a single symbol, "
               "got " + SetToString(p.elems));
    }
  }

  /// GROUP: by/on non-empty and disjoint; every 'by' attribute and at
  /// least one 'on' attribute must label a column.
  void CheckGroupLike(const std::string& path, const char* op,
                      const char* by_word, const char* on_word,
                      const AbsParam& by, const AbsParam& on,
                      const TableShape& in, const std::string& arg0,
                      const std::string& cols_note, bool definite,
                      bool by_is_rows) {
    (void)by_is_rows;
    CheckNonEmpty(path, op, by_word, by, definite);
    CheckNonEmpty(path, op, on_word, on, definite);
    if (by.known() && on.known()) {
      for (Symbol a : by.elems) {
        if (on.elems.contains(a)) {
          Emit(Sev(definite), path,
               std::string(op) + " '" + by_word + "' and '" + on_word +
                   "' sets overlap at " + Quoted(a));
        }
      }
    }
    CheckEachLabelsColumn(path, op, by_word, by, in, arg0, cols_note,
                          Sev(definite));
    CheckAllLabelColumns(path, op, on_word, on, in, arg0, cols_note,
                         definite);
  }

  /// Each attribute of `p` must label a column (kernel errors per attr).
  void CheckEachLabelsColumn(const std::string& path, const char* op,
                             const char* which, const AbsParam& p,
                             const TableShape& in, const std::string& arg0,
                             const std::string& cols_note,
                             Severity severity) {
    if (!p.known()) return;
    for (Symbol a : p.elems) {
      if (in.cols.DefinitelyLacks(a)) {
        Emit(severity, path,
             std::string(op) + " '" + which + "' attribute " + Quoted(a) +
                 " labels no column of " + arg0,
             cols_note);
      }
    }
  }

  /// At least one attribute of `p` must label a column (kernel errors only
  /// when the whole set misses).
  void CheckAllLabelColumns(const std::string& path, const char* op,
                            const char* which, const AbsParam& p,
                            const TableShape& in, const std::string& arg0,
                            const std::string& cols_note, bool definite) {
    if (!p.known() || p.elems.empty()) return;
    bool any_may_label = false;
    for (Symbol a : p.elems) any_may_label |= in.cols.MayContain(a);
    if (!any_may_label) {
      Emit(Sev(definite), path,
           "no " + std::string(op) + " '" + which +
               "' attribute labels a column of " + arg0,
           cols_note);
    }
  }

  /// Each attribute of `p` must name a row (MERGE/COLLAPSE kernel errors).
  void CheckEachNamesRow(const std::string& path, const char* op,
                         const char* which, const AbsParam& p,
                         const TableShape& in, const std::string& arg0,
                         const std::string& rows_note, bool definite) {
    if (!p.known()) return;
    for (Symbol a : p.elems) {
      if (in.rows.DefinitelyLacks(a)) {
        Emit(Sev(definite), path,
             std::string(op) + " '" + which + "' attribute " + Quoted(a) +
                 " names no row of " + arg0,
             rows_note);
      }
    }
  }

  /// Warning-only variant for the total operators (CLEAN-UP/PURGE).
  void CheckEachNamesRowWarn(const std::string& path, const char* op,
                             const char* which, const AbsParam& p,
                             const TableShape& in, const std::string& arg0,
                             const std::string& rows_note) {
    if (!p.known()) return;
    for (Symbol a : p.elems) {
      if (in.rows.DefinitelyLacks(a)) {
        Emit(Severity::kWarning, path,
             std::string(op) + " '" + which + "' attribute " + Quoted(a) +
                 " names no row of " + arg0,
             rows_note);
      }
    }
  }

  // -- Shape transfer --------------------------------------------------------

  /// SETNEW's data-row count: m ↦ m·2^(m-1), saturating (helpers shared
  /// with the cost model live on CardInterval).
  static uint64_t SetNewRows(uint64_t m) {
    if (m == 0) return 0;
    if (m == CardInterval::kInf || m - 1 >= 63) return CardInterval::kInf;
    return CardInterval::SatMul(m, uint64_t{1} << (m - 1));
  }

  /// How many tables one executed SPLIT stages: one per distinct value
  /// combination among the data rows of each carrier, so at most
  /// carriers × data rows (and possibly none at all).
  static CardInterval SplitCount(const TableShape& in) {
    return CardInterval::AtMost(
        CardInterval::SatMul(in.count.hi, in.row_card.hi));
  }

  /// The output shape of one instantiation. `in2` is used by the binary
  /// operations only; `same_single_arg` flags a binary operation whose two
  /// arguments literally name the same table pool. The caller owns
  /// `certain` and the carrier `count`.
  static TableShape ApplyOp(OpKind op, const std::vector<AbsParam>& params,
                            const TableShape& in1, const TableShape* in2,
                            bool same_single_arg) {
    TableShape out = in1;
    out.certain = false;
    switch (op) {
      case OpKind::kUnion:
      case OpKind::kProduct:
        out.cols.Join(in2->cols);
        out.rows.Join(in2->rows);
        out.col_card = in1.col_card.Plus(in2->col_card);
        if (op == OpKind::kProduct) {
          // The combined row attribute may fall back to ⊥ (paper-gap),
          // and no particular pairing survives an empty side.
          out.rows.Insert(Symbol::Null());
          out.must_rows = MustSet::Top();
          out.row_card = in1.row_card.Times(in2->row_card);
        } else {
          // Both attribute rows and both data-row blocks concatenate.
          out.must_rows.elems.insert(in2->must_rows.elems.begin(),
                                     in2->must_rows.elems.end());
          out.row_card = in1.row_card.Plus(in2->row_card);
        }
        out.must_cols.elems.insert(in2->must_cols.elems.begin(),
                                   in2->must_cols.elems.end());
        break;
      case OpKind::kDifference:
        // ρ's shape, rows a subset.
        if (same_single_arg && in1.count == CardInterval::Exact(1)) {
          // difference(X, X) over a single carrier: every row subsumes
          // itself, so the result provably has no data rows.
          out.rows = AttrSet::Of({});
          out.must_rows = MustSet::Top();
          out.row_card = CardInterval::Exact(0);
        } else {
          out.must_rows = MustSet::Top();
          out.row_card = CardInterval::AtMost(in1.row_card.hi);
        }
        break;
      case OpKind::kIntersection:
        if (same_single_arg && in1.count == CardInterval::Exact(1)) {
          break;  // intersection(X, X) over a single carrier: identity
        }
        out.must_rows = MustSet::Top();
        out.row_card = CardInterval::AtMost(in1.row_card.hi);
        break;
      case OpKind::kRename: {
        std::optional<Symbol> to = params[0].Singleton();
        std::optional<Symbol> from = params[1].Singleton();
        if (to.has_value() && from.has_value()) {
          out.cols.Erase(*from);
          out.cols.Insert(*to);
          const bool had = out.must_cols.CertainlyContains(*from);
          out.must_cols.Erase(*from);
          if (had) out.must_cols.Insert(*to);
        } else {
          out.cols = AttrSet::Top();
          out.must_cols = MustSet::Top();
        }
        break;  // relabeling only: both dimensions are exact
      }
      case OpKind::kProject:
        out.cols = ApplySetRestriction(in1.cols, params[0]);
        switch (params[0].kind) {
          case AbsParam::Kind::kKnown: {
            std::erase_if(out.must_cols.elems, [&](Symbol a) {
              return !params[0].elems.contains(a);
            });
            bool any_may_match = in1.cols.top;
            for (Symbol a : params[0].elems) {
              any_may_match |= in1.cols.MayContain(a);
            }
            out.col_card = any_may_match
                               ? CardInterval::AtMost(in1.col_card.hi)
                               : CardInterval::Exact(0);
            break;
          }
          case AbsParam::Kind::kUniverseMinus:
            for (Symbol a : params[0].elems) out.must_cols.Erase(a);
            out.col_card = CardInterval::AtMost(in1.col_card.hi);
            break;
          case AbsParam::Kind::kUnknown:
            out.must_cols = MustSet::Top();
            out.col_card = CardInterval::AtMost(in1.col_card.hi);
            break;
        }
        break;  // data rows pass through untouched
      case OpKind::kSelect:
        // SELECT_{A=A} keeps every row (weak equality is reflexive);
        // otherwise a row subset with the column layout preserved.
        if (params[0].Singleton().has_value() &&
            params[0].Singleton() == params[1].Singleton()) {
          break;
        }
        out.must_rows = MustSet::Top();
        out.row_card = CardInterval::AtMost(in1.row_card.hi);
        break;
      case OpKind::kSelectConst:
        out.must_rows = MustSet::Top();
        out.row_card = CardInterval::AtMost(in1.row_card.hi);
        break;
      case OpKind::kGroup:
        // by-attrs leave the columns and become row attributes; the
        // ℬ-column block is replicated once per input data row.
        if (params[0].known()) {
          for (Symbol a : params[0].elems) out.cols.Erase(a);
          for (Symbol a : params[0].elems) out.rows.Insert(a);
          // One leading row per by-attr plus one sparse row per input row.
          out.must_rows = MustSet::Of(params[0].elems);
          out.row_card = in1.row_card.PlusConst(params[0].elems.size());
        } else {
          out.rows = AttrSet::Top();
          out.must_rows = MustSet::Top();
          out.row_card = in1.row_card.Plus(CardInterval{1, CardInterval::kInf});
        }
        if (params[0].known() && params[1].known()) {
          std::erase_if(out.must_cols.elems, [&](Symbol a) {
            return params[0].elems.contains(a) || params[1].elems.contains(a);
          });
          if (in1.row_card.lo >= 1) {
            // At least one block exists, carrying every present ℬ-attr.
            for (Symbol b : params[1].elems) {
              if (in1.must_cols.CertainlyContains(b)) out.must_cols.Insert(b);
            }
          }
        } else {
          out.must_cols = MustSet::Top();
        }
        out.col_card = CardInterval::AtMost(CardInterval::SatAdd(
            in1.col_card.hi,
            CardInterval::SatMul(in1.row_card.hi, in1.col_card.hi)));
        break;
      case OpKind::kMerge:
        // by-attrs' rows are consumed and become columns; every column
        // attribute survives (kept outright or re-emitted in the block).
        if (params[1].known()) {
          for (Symbol a : params[1].elems) out.rows.Erase(a);
          for (Symbol a : params[1].elems) out.cols.Insert(a);
        } else {
          out.cols = AttrSet::Top();
        }
        if (params[0].known() && params[1].known()) {
          // Rows survive only if at least one block forms, i.e. some
          // 'on' attribute certainly labels a column.
          bool block_certain = false;
          for (Symbol b : params[0].elems) {
            block_certain |= in1.must_cols.CertainlyContains(b);
          }
          if (block_certain) {
            for (Symbol a : params[1].elems) out.must_rows.Erase(a);
          } else {
            out.must_rows = MustSet::Top();
          }
          out.col_card = CardInterval::AtMost(CardInterval::SatAdd(
              CardInterval::SatAdd(in1.col_card.hi, in1.col_card.hi),
              params[1].elems.size()));
        } else {
          out.must_rows = MustSet::Top();
          out.col_card = CardInterval::Top();
        }
        out.row_card = in1.row_card.hi == 0 ? CardInterval::Exact(0)
                                            : CardInterval::Top();
        break;
      case OpKind::kSplit:
        // on-attrs' columns are dropped; one leading row per attribute,
        // then at least one matching data row per produced table.
        if (params[0].known()) {
          for (Symbol a : params[0].elems) out.cols.Erase(a);
          for (Symbol a : params[0].elems) out.rows.Insert(a);
          std::erase_if(out.must_cols.elems, [&](Symbol a) {
            return params[0].elems.contains(a);
          });
          out.must_rows = MustSet::Of(params[0].elems);
          out.row_card = CardInterval::Range(
              CardInterval::SatAdd(params[0].elems.size(), 1),
              CardInterval::SatAdd(params[0].elems.size(),
                                   in1.row_card.hi));
        } else {
          out.rows = AttrSet::Top();
          out.must_cols = MustSet::Top();
          out.must_rows = MustSet::Top();
          out.row_card = CardInterval::AtMost(
              CardInterval::SatAdd(in1.row_card.hi, in1.col_card.hi));
        }
        out.col_card = CardInterval::AtMost(in1.col_card.hi);
        break;
      case OpKind::kCollapse:
        // Inverse of split: the by-rows are consumed, re-adding columns;
        // implemented as a merge-on-everything per carrier plus a union.
        if (params[0].known()) {
          for (Symbol a : params[0].elems) out.rows.Erase(a);
          for (Symbol a : params[0].elems) out.cols.Insert(a);
        } else {
          out.cols = AttrSet::Top();
        }
        out.must_rows = MustSet::Top();
        out.row_card = in1.row_card.hi == 0 ? CardInterval::Exact(0)
                                            : CardInterval::Top();
        out.col_card = CardInterval::Top();
        break;
      case OpKind::kTranspose:
        std::swap(out.cols, out.rows);
        std::swap(out.must_cols, out.must_rows);
        std::swap(out.row_card, out.col_card);
        break;
      case OpKind::kSwitch:
        // Row 0 and column 0 swap with the promoted entry's position: any
        // entry may become an attribute, but both dimensions are exact.
        out.cols = AttrSet::Top();
        out.rows = AttrSet::Top();
        out.must_cols = MustSet::Top();
        out.must_rows = MustSet::Top();
        break;
      case OpKind::kCleanUp:
        // Row-redundancy removal: groups merge into a subsumer that keeps
        // the group's row attribute, so attribute regions and the column
        // layout survive; only the data-row count can shrink.
        out.row_card = CardInterval::AtMost(in1.row_card.hi);
        break;
      case OpKind::kPurge:
        out.col_card = CardInterval::AtMost(in1.col_card.hi);
        break;
      case OpKind::kTupleNew:
      case OpKind::kSetNew: {
        std::optional<Symbol> a = params[0].Singleton();
        if (a.has_value()) {
          out.cols.Insert(*a);
          out.must_cols.Insert(*a);
        } else {
          out.cols = AttrSet::Top();
          out.must_cols = MustSet::Top();
        }
        out.col_card = in1.col_card.PlusConst(1);
        if (op == OpKind::kSetNew) {
          // Every input row reappears (tagged) in its singleton subset,
          // but the data-row count explodes to m·2^(m-1). A saturated
          // lower bound clamps at kInf-1 (∞ is upper-bound-only).
          uint64_t lo = SetNewRows(in1.row_card.lo);
          if (lo == CardInterval::kInf) lo = CardInterval::kInf - 1;
          out.row_card = CardInterval{lo, SetNewRows(in1.row_card.hi)};
        }
        break;
      }
    }
    // Every attribute certainly present labels at least one column/names
    // at least one row, so the must-sets bound the dimensions from below.
    const uint64_t col_floor = out.must_cols.elems.size();
    if (out.col_card.lo < col_floor) {
      out.col_card.lo = col_floor < out.col_card.hi ? col_floor
                                                    : out.col_card.hi;
    }
    const uint64_t row_floor = out.must_rows.elems.size();
    if (out.row_card.lo < row_floor) {
      out.row_card.lo = row_floor < out.row_card.hi ? row_floor
                                                    : out.row_card.hi;
    }
    return out;
  }

  /// PROJECT's column restriction under the three parameter shapes.
  static AttrSet ApplySetRestriction(const AttrSet& cols, const AbsParam& p) {
    switch (p.kind) {
      case AbsParam::Kind::kKnown: {
        if (cols.top) return AttrSet::Of(p.elems);
        SymbolSet kept;
        for (Symbol a : cols.elems) {
          if (p.elems.contains(a)) kept.insert(a);
        }
        return AttrSet::Of(std::move(kept));
      }
      case AbsParam::Kind::kUniverseMinus: {
        AttrSet out = cols;
        for (Symbol a : p.elems) out.Erase(a);
        return out;
      }
      case AbsParam::Kind::kUnknown:
        return cols;  // a subset of the input columns either way
    }
    return cols;
  }

  const AnalyzerOptions options_;
  std::vector<Diagnostic>* sink_;
  std::vector<AbstractDatabase>* states_ = nullptr;
  bool emit_ = true;
};

/// Dead-store warnings over the top-level statement list.
void DiagnoseDeadStores(const Program& program,
                        std::vector<Diagnostic>* sink) {
  std::vector<bool> keep = DeadStoreKeepMask(program, AllTableNames(program));
  for (size_t i = 0; i < program.statements.size(); ++i) {
    if (keep[i]) continue;
    const auto* a = std::get_if<Assignment>(&program.statements[i].node);
    if (a == nullptr) continue;
    SymbolSet writes;
    bool universal = false;
    CollectParamNames(a->target, &writes, &universal);
    if (universal || writes.size() != 1) continue;
    Symbol target = *writes.begin();
    // The killing statement (a full reassignment or a drop), for the
    // message. The mask guarantees one exists.
    size_t killer = 0;
    bool killed_by_drop = false;
    for (size_t j = i + 1; j < program.statements.size() && killer == 0;
         ++j) {
      SymbolSet w2;
      bool u2 = false;
      if (const auto* b = std::get_if<Assignment>(&program.statements[j].node)) {
        CollectParamNames(b->target, &w2, &u2);
        if (!u2 && w2.size() == 1 && *w2.begin() == target) killer = j + 1;
      } else if (const auto* d =
                     std::get_if<DropStatement>(&program.statements[j].node)) {
        CollectParamNames(d->target, &w2, &u2);
        if (!u2 && w2.contains(target)) {
          killer = j + 1;
          killed_by_drop = true;
        }
      }
    }
    if (killer == 0) continue;
    Diagnostic d;
    d.severity = Severity::kWarning;
    d.path = std::to_string(i + 1);
    d.message = "store to " + Quoted(target) + " is dead: " +
                (killed_by_drop ? "dropped" : "overwritten") +
                " at statement " + std::to_string(killer) +
                " before any read";
    sink->push_back(std::move(d));
  }
}

}  // namespace

AnalysisResult AnalyzeProgram(const Program& program, AbstractDatabase initial,
                              const AnalyzerOptions& options) {
  AnalysisResult result;
  result.final_state = std::move(initial);
  Analyzer analyzer(options, &result.diagnostics,
                    options.record_top_level_states ? &result.top_level_states
                                                    : nullptr);
  analyzer.AnalyzeStatements(program.statements, "", &result.final_state,
                             /*certain_context=*/true);
  if (options.check_dead_stores) {
    DiagnoseDeadStores(program, &result.diagnostics);
  }
  // Deterministic order: by statement path (numeric, dotted), then by
  // insertion. Dead-store diagnostics land after the dataflow pass, so a
  // stable sort interleaves them at their statement positions.
  std::stable_sort(result.diagnostics.begin(), result.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return PathLess(a.path, b.path);
                   });
  return result;
}

// -- Guard facts -------------------------------------------------------------

bool GuardDefinitelyFalse(const AbstractDatabase& state,
                          const SymbolSet& guard, bool guard_universal) {
  if (guard_universal || guard.empty()) return false;
  for (Symbol g : guard) {
    if (state.DefinitelyAbsent(g)) continue;
    TableShape shape = state.ShapeOf(g);
    if (shape.count.DefinitelyZero() || shape.row_card.DefinitelyZero()) {
      continue;
    }
    return false;  // this name may have a data row
  }
  return true;
}

bool GuardCertainlyTrue(const AbstractDatabase& state,
                        const SymbolSet& guard) {
  for (Symbol g : guard) {
    if (!state.CertainlyExists(g)) continue;
    TableShape shape = state.ShapeOf(g);
    if (shape.count.DefinitelyPositive() &&
        shape.row_card.DefinitelyPositive()) {
      return true;
    }
  }
  return false;
}

// -- Name-flow facts ---------------------------------------------------------

void CollectParamNames(const Param& p, SymbolSet* out, bool* universal) {
  for (const ParamItem& it : p.positive) {
    switch (it.kind) {
      case ParamItem::Kind::kSymbol:
        out->insert(it.symbol);
        break;
      case ParamItem::Kind::kNull:
        out->insert(Symbol::Null());
        break;
      case ParamItem::Kind::kWildcard:
      case ParamItem::Kind::kPair:
        *universal = true;
        break;
    }
  }
}

void CollectStatementReads(const Statement& s, SymbolSet* out,
                           bool* universal) {
  if (const auto* a = std::get_if<Assignment>(&s.node)) {
    for (const Param& arg : a->args) CollectParamNames(arg, out, universal);
  } else if (const auto* w = std::get_if<WhileLoop>(&s.node)) {
    CollectParamNames(w->condition, out, universal);
    for (const Statement& inner : w->body) {
      CollectStatementReads(inner, out, universal);
    }
  }
  // Drop reads nothing.
}

namespace {

void CollectAllStatementNames(const Statement& s, SymbolSet* out) {
  bool universal = false;
  CollectStatementReads(s, out, &universal);
  if (const auto* a = std::get_if<Assignment>(&s.node)) {
    CollectParamNames(a->target, out, &universal);
  } else if (const auto* d = std::get_if<DropStatement>(&s.node)) {
    CollectParamNames(d->target, out, &universal);
  } else if (const auto* w = std::get_if<WhileLoop>(&s.node)) {
    for (const Statement& inner : w->body) {
      CollectAllStatementNames(inner, out);
    }
  }
}

}  // namespace

SymbolSet AllTableNames(const Program& program) {
  SymbolSet out;
  for (const Statement& s : program.statements) {
    CollectAllStatementNames(s, &out);
  }
  return out;
}

std::vector<bool> DeadStoreKeepMask(const Program& program,
                                    const SymbolSet& live_out) {
  SymbolSet live = live_out;
  bool universal_live = false;
  std::vector<bool> keep(program.statements.size(), true);

  for (size_t idx = program.statements.size(); idx-- > 0;) {
    const Statement& s = program.statements[idx];
    if (const auto* a = std::get_if<Assignment>(&s.node)) {
      SymbolSet writes;
      bool universal_write = false;
      CollectParamNames(a->target, &writes, &universal_write);
      const bool single_literal_write =
          !universal_write && writes.size() == 1;
      if (!universal_live && single_literal_write &&
          !live.contains(*writes.begin())) {
        keep[idx] = false;
        continue;  // dead: no kill, no new reads
      }
      // Replacement semantics: a literal write fully overwrites its name.
      if (single_literal_write) live.erase(*writes.begin());
      CollectStatementReads(s, &live, &universal_live);
    } else if (const auto* d = std::get_if<DropStatement>(&s.node)) {
      SymbolSet dropped;
      bool universal_drop = false;
      CollectParamNames(d->target, &dropped, &universal_drop);
      if (!universal_drop) {
        for (Symbol nm : dropped) live.erase(nm);
      }
    } else {
      // While loops: everything read inside stays live across the loop;
      // bodies are left untouched (iteration makes in-body stores
      // observable by earlier body statements).
      CollectStatementReads(s, &live, &universal_live);
    }
  }
  return keep;
}

}  // namespace tabular::analysis
