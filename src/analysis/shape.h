#ifndef TABULAR_ANALYSIS_SHAPE_H_
#define TABULAR_ANALYSIS_SHAPE_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/database.h"
#include "core/symbol.h"

namespace tabular::analysis {

/// The abstract-schema domain for the static analyzer.
///
/// A `TableShape` approximates every table carrying one name by its two
/// attribute regions (paper §2): the column attributes τ⁰_{>0} and the row
/// attributes τ_{>0}⁰. Sets are *may*-supersets — every attribute a real
/// run can produce is in the set — so membership proves nothing, but
/// **absence is definite**: if `cols.DefinitelyLacks(A)`, no execution
/// reaches this point with a column named A. All diagnostics that claim an
/// error are absence-based for exactly this reason.
///
/// Two further domains refine the may-sets (PR 5):
///
///   * `MustSet` — the dual *must*-subset: attributes every table carrying
///     the name certainly has, on every run. Membership is the definite
///     fact here; absence proves nothing. Join is set intersection and ⊤
///     (no certain knowledge) is the empty set.
///   * `CardInterval` — `[lo, hi]` bounds on a per-table count (data rows,
///     data columns) or on the number of tables carrying a name. Join is
///     interval hull; while-fixpoints use `Widen`, which jumps unstable
///     bounds to 0 / ∞ so loops terminate.

/// An abstract attribute set: ⊤ (anything, from wildcard-bound unknowns)
/// or a finite may-superset of the attributes that can occur.
struct AttrSet {
  bool top = false;
  core::SymbolSet elems;  // meaningful only when !top

  static AttrSet Top() { return AttrSet{true, {}}; }
  static AttrSet Of(core::SymbolSet s) { return AttrSet{false, std::move(s)}; }

  bool MayContain(core::Symbol s) const { return top || elems.contains(s); }
  /// The sound negative: no run produces attribute `s` here.
  bool DefinitelyLacks(core::Symbol s) const { return !top && !elems.contains(s); }

  void Insert(core::Symbol s) {
    if (!top) elems.insert(s);
  }
  void Erase(core::Symbol s) {
    if (!top) elems.erase(s);
  }

  /// Least upper bound: ⊤ absorbs; otherwise set union.
  void Join(const AttrSet& o);

  /// True when every state this set admits is admitted by `o`:
  /// o.top, or (finite both and elems ⊆ o.elems).
  bool SubsetOf(const AttrSet& o) const;

  /// "⊤" or "{A, B, ⊥}" in deterministic symbol order.
  std::string ToString() const;

  friend bool operator==(const AttrSet& a, const AttrSet& b) {
    return a.top == b.top && (a.top || a.elems == b.elems);
  }
};

/// The must-attribute domain: attributes provably present in every table
/// carrying the name, on every run reaching the program point. Dual to
/// `AttrSet`: here *membership* is the sound fact. The lattice order runs
/// by reverse inclusion — a larger set is more precise — so the join
/// (least upper bound of approximations) is set intersection, and ⊤ (no
/// certain knowledge at all) is the empty set.
struct MustSet {
  core::SymbolSet elems;

  static MustSet Top() { return MustSet{}; }
  static MustSet Of(core::SymbolSet s) { return MustSet{std::move(s)}; }

  /// The sound positive: every run has attribute `s` here.
  bool CertainlyContains(core::Symbol s) const { return elems.contains(s); }
  bool IsTop() const { return elems.empty(); }

  void Insert(core::Symbol s) { elems.insert(s); }
  void Erase(core::Symbol s) { elems.erase(s); }

  /// Least upper bound: set intersection (⊤ = ∅ absorbs).
  void Join(const MustSet& o);

  /// True when this set's guarantee implies `o`'s: elems ⊇ o.elems.
  bool Covers(const MustSet& o) const;

  /// "∅" or "{A, B}" in deterministic symbol order.
  std::string ToString() const;

  friend bool operator==(const MustSet& a, const MustSet& b) {
    return a.elems == b.elems;
  }
};

/// A `[lo, hi]` interval over non-negative counts, with hi = ∞ for the
/// unbounded top. Used for per-table data-row and data-column counts and
/// for the number of tables carrying a name.
///
/// Invariant: the ∞ sentinel only ever appears as an *upper* bound. The
/// arithmetic helpers clamp a saturating lower bound at `kInf - 1`, so
/// `hi == kInf` always means "unbounded" and `lo` is always a realizable
/// finite count.
struct CardInterval {
  /// Sentinel for an unbounded upper end.
  static constexpr uint64_t kInf = UINT64_MAX;

  /// Saturating scalar sums and products shared by the analyzer's transfer
  /// functions and the cost model. A result that would *reach* the kInf
  /// sentinel saturates to it (a finite count numerically equal to the
  /// sentinel is indistinguishable from ∞, so it must be reported as ∞ —
  /// never as an exact value, and never wrapped). 0·∞ = 0: a count
  /// multiplied by a provably-zero count is zero no matter how unbounded
  /// the other side is (e.g. PRODUCT rows with an empty side).
  static uint64_t SatAdd(uint64_t a, uint64_t b);
  static uint64_t SatMul(uint64_t a, uint64_t b);

  uint64_t lo = 0;
  uint64_t hi = kInf;

  static CardInterval Top() { return CardInterval{0, kInf}; }
  static CardInterval Exact(uint64_t n) { return CardInterval{n, n}; }
  static CardInterval Range(uint64_t lo, uint64_t hi) {
    return CardInterval{lo, hi};
  }
  /// Upper bound kept, lower bound dropped (the "may shrink" transfer).
  static CardInterval AtMost(uint64_t hi) { return CardInterval{0, hi}; }

  bool IsTop() const { return lo == 0 && hi == kInf; }
  bool Contains(uint64_t n) const { return lo <= n && n <= hi; }
  /// Interval containment: every count this admits, `o` admits.
  bool WithinOf(const CardInterval& o) const {
    return o.lo <= lo && hi <= o.hi;
  }
  /// The definite facts the optimizer keys on.
  bool DefinitelyZero() const { return hi == 0; }
  bool DefinitelyPositive() const { return lo >= 1; }

  /// Least upper bound: interval hull.
  void Join(const CardInterval& o);
  /// Widening: an unstable bound jumps straight to 0 / ∞, guaranteeing
  /// fixpoint termination at while loops.
  void Widen(const CardInterval& o);

  /// Saturating pointwise arithmetic for operator transfer functions.
  /// Upper bounds saturate to the ∞ sentinel; lower bounds clamp at
  /// `kInf - 1` (see the struct invariant) so `[kInf-1, ∞)` — not the
  /// contradictory "=∞" — is the most saturated interval expressible.
  CardInterval Plus(const CardInterval& o) const;
  CardInterval Times(const CardInterval& o) const;
  /// Adds a constant to both ends (saturating).
  CardInterval PlusConst(uint64_t n) const;

  /// "[2,5]", "[0,∞)", or "=3" for exact singletons.
  std::string ToString() const;

  friend bool operator==(const CardInterval& a, const CardInterval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// Abstract shape of the tables carrying one name.
struct TableShape {
  AttrSet cols;  ///< column attributes τ⁰_{>0}, may-superset
  AttrSet rows;  ///< row attributes τ_{>0}⁰, may-superset
  /// True when at least one table with this name exists on *every* path
  /// reaching the program point (so a statement reading it always has at
  /// least one instantiation).
  bool certain = false;
  MustSet must_cols;  ///< column attributes certainly present (every table)
  MustSet must_rows;  ///< row attributes certainly present (every table)
  /// Per-table data-row count bounds (paper height m), holding for every
  /// table carrying the name.
  CardInterval row_card = CardInterval::Top();
  /// Per-table data-column count bounds (paper width n).
  CardInterval col_card = CardInterval::Top();
  /// Bounds on the number of tables carrying the name.
  CardInterval count = CardInterval::Top();

  static TableShape Top(bool certain) {
    TableShape s;
    s.cols = AttrSet::Top();
    s.rows = AttrSet::Top();
    s.certain = certain;
    return s;
  }

  void Join(const TableShape& o, bool widen = false);

  /// "cols=⋯ rows=⋯" plus must/cardinality components when informative
  /// (existence flag not rendered).
  std::string ToString() const;

  friend bool operator==(const TableShape& a, const TableShape& b) {
    return a.cols == b.cols && a.rows == b.rows && a.certain == b.certain &&
           a.must_cols == b.must_cols && a.must_rows == b.must_rows &&
           a.row_card == b.row_card && a.col_card == b.col_card &&
           a.count == b.count;
  }
};

/// The abstract database: shapes keyed by table name. When `top` is set, a
/// wildcard (or pair) target may have written arbitrary names, so a name
/// missing from `tables` can still exist; when `top` is clear, a missing
/// name is **provably absent**.
struct AbstractDatabase {
  bool top = false;
  std::map<core::Symbol, TableShape, core::SymbolLess> tables;

  /// The lint default when no initial schema is given: anything may exist.
  static AbstractDatabase Unknown() { return AbstractDatabase{true, {}}; }

  /// The empty database: nothing exists until the program creates it.
  static AbstractDatabase Empty() { return AbstractDatabase{}; }

  /// Exact shapes of a concrete database (joined across same-named
  /// tables, must-sets intersected, cardinalities exact hulls); every name
  /// present is `certain`.
  static AbstractDatabase FromDatabase(const core::TabularDatabase& db);

  const TableShape* Find(core::Symbol name) const;
  bool MayExist(core::Symbol name) const {
    return top || tables.contains(name);
  }
  bool DefinitelyAbsent(core::Symbol name) const { return !MayExist(name); }
  bool CertainlyExists(core::Symbol name) const {
    const TableShape* s = Find(name);
    return s != nullptr && s->certain;
  }

  /// Shape read for a name under the current ⊤-state: ⊤ shape when the
  /// name is only covered by `top`; a provably absent name reads as the
  /// empty pool (count = 0).
  TableShape ShapeOf(core::Symbol name) const;

  /// Least upper bound: per-name shape join; a name on only one side stays
  /// with `certain` cleared (it may be absent on the other path). With
  /// `widen`, cardinality intervals widen instead of hulling (while
  /// fixpoints).
  void Join(const AbstractDatabase& o, bool widen = false);

  /// A wildcard write: any name may now exist with any shape. Existing
  /// names stay (replacement semantics never removes a name) but their
  /// shapes degrade to ⊤.
  void WildcardWrite();

  friend bool operator==(const AbstractDatabase& a, const AbstractDatabase& b) {
    return a.top == b.top && a.tables == b.tables;
  }

  std::string ToString() const;
};

}  // namespace tabular::analysis

#endif  // TABULAR_ANALYSIS_SHAPE_H_
