#ifndef TABULAR_ANALYSIS_SHAPE_H_
#define TABULAR_ANALYSIS_SHAPE_H_

#include <map>
#include <string>

#include "core/database.h"
#include "core/symbol.h"

namespace tabular::analysis {

/// The abstract-schema domain for the static analyzer.
///
/// A `TableShape` approximates every table carrying one name by its two
/// attribute regions (paper §2): the column attributes τ⁰_{>0} and the row
/// attributes τ_{>0}⁰. Sets are *may*-supersets — every attribute a real
/// run can produce is in the set — so membership proves nothing, but
/// **absence is definite**: if `cols.DefinitelyLacks(A)`, no execution
/// reaches this point with a column named A. All diagnostics that claim an
/// error are absence-based for exactly this reason.

/// An abstract attribute set: ⊤ (anything, from wildcard-bound unknowns)
/// or a finite may-superset of the attributes that can occur.
struct AttrSet {
  bool top = false;
  core::SymbolSet elems;  // meaningful only when !top

  static AttrSet Top() { return AttrSet{true, {}}; }
  static AttrSet Of(core::SymbolSet s) { return AttrSet{false, std::move(s)}; }

  bool MayContain(core::Symbol s) const { return top || elems.contains(s); }
  /// The sound negative: no run produces attribute `s` here.
  bool DefinitelyLacks(core::Symbol s) const { return !top && !elems.contains(s); }

  void Insert(core::Symbol s) {
    if (!top) elems.insert(s);
  }
  void Erase(core::Symbol s) {
    if (!top) elems.erase(s);
  }

  /// Least upper bound: ⊤ absorbs; otherwise set union.
  void Join(const AttrSet& o);

  /// "⊤" or "{A, B, ⊥}" in deterministic symbol order.
  std::string ToString() const;

  friend bool operator==(const AttrSet& a, const AttrSet& b) {
    return a.top == b.top && (a.top || a.elems == b.elems);
  }
};

/// Abstract shape of the tables carrying one name.
struct TableShape {
  AttrSet cols;  ///< column attributes τ⁰_{>0}
  AttrSet rows;  ///< row attributes τ_{>0}⁰
  /// True when at least one table with this name exists on *every* path
  /// reaching the program point (so a statement reading it always has at
  /// least one instantiation).
  bool certain = false;

  static TableShape Top(bool certain) {
    return TableShape{AttrSet::Top(), AttrSet::Top(), certain};
  }

  void Join(const TableShape& o);

  /// "cols=⋯ rows=⋯" (existence flag not rendered).
  std::string ToString() const;

  friend bool operator==(const TableShape& a, const TableShape& b) {
    return a.cols == b.cols && a.rows == b.rows && a.certain == b.certain;
  }
};

/// The abstract database: shapes keyed by table name. When `top` is set, a
/// wildcard (or pair) target may have written arbitrary names, so a name
/// missing from `tables` can still exist; when `top` is clear, a missing
/// name is **provably absent**.
struct AbstractDatabase {
  bool top = false;
  std::map<core::Symbol, TableShape, core::SymbolLess> tables;

  /// The lint default when no initial schema is given: anything may exist.
  static AbstractDatabase Unknown() { return AbstractDatabase{true, {}}; }

  /// The empty database: nothing exists until the program creates it.
  static AbstractDatabase Empty() { return AbstractDatabase{}; }

  /// Exact shapes of a concrete database (joined across same-named
  /// tables); every name present is `certain`.
  static AbstractDatabase FromDatabase(const core::TabularDatabase& db);

  const TableShape* Find(core::Symbol name) const;
  bool MayExist(core::Symbol name) const {
    return top || tables.contains(name);
  }
  bool DefinitelyAbsent(core::Symbol name) const { return !MayExist(name); }
  bool CertainlyExists(core::Symbol name) const {
    const TableShape* s = Find(name);
    return s != nullptr && s->certain;
  }

  /// Shape read for a name under the current ⊤-state: ⊤ shape when the
  /// name is only covered by `top`.
  TableShape ShapeOf(core::Symbol name) const;

  /// Least upper bound: per-name shape join; a name on only one side stays
  /// with `certain` cleared (it may be absent on the other path).
  void Join(const AbstractDatabase& o);

  /// A wildcard write: any name may now exist with any shape. Existing
  /// names stay (replacement semantics never removes a name) but their
  /// shapes degrade to ⊤.
  void WildcardWrite();

  friend bool operator==(const AbstractDatabase& a, const AbstractDatabase& b) {
    return a.top == b.top && a.tables == b.tables;
  }

  std::string ToString() const;
};

}  // namespace tabular::analysis

#endif  // TABULAR_ANALYSIS_SHAPE_H_
