#ifndef TABULAR_IO_CSV_H_
#define TABULAR_IO_CSV_H_

#include <string>
#include <string_view>

#include "relational/relation.h"

namespace tabular::io {

/// Minimal RFC-4180-style CSV ingestion for fact tables: the first record
/// is the header (attribute names), the remaining records are tuples
/// (values). Fields may be double-quoted; `""` escapes a quote inside a
/// quoted field; an empty unquoted field reads as ⊥, an empty quoted
/// field ("") as the empty-text value.
tabular::Result<rel::Relation> ReadCsvRelation(std::string_view name,
                                               std::string_view csv);

/// Writes a relation as CSV (header + tuples); ⊥ becomes an empty field.
std::string WriteCsv(const rel::Relation& relation);

}  // namespace tabular::io

#endif  // TABULAR_IO_CSV_H_
