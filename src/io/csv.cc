#include "io/csv.h"

#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tabular::io {

using core::Symbol;
using core::SymbolVec;
using rel::Relation;
using tabular::Result;
using tabular::Status;

namespace {

/// Every CSV parse failure funnels through here so `io.csv.parse_errors`
/// counts them all, wherever they originate.
Status CountedParseError(std::string message) {
  static obs::Counter& parse_errors = obs::GetCounter("io.csv.parse_errors");
  parse_errors.Add(1);
  return Status::ParseError(std::move(message));
}

struct CsvField {
  std::string text;
  bool quoted = false;
};

/// Parses all records; handles quoted fields with embedded commas,
/// newlines and doubled quotes.
Result<std::vector<std::vector<CsvField>>> ParseCsv(std::string_view csv) {
  std::vector<std::vector<CsvField>> records;
  std::vector<CsvField> record;
  CsvField field;
  size_t i = 0;
  bool in_quotes = false;
  bool any = false;
  while (i < csv.size()) {
    char c = csv[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < csv.size() && csv[i + 1] == '"') {
          field.text.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.text.push_back(c);
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        if (field.quoted) {
          return CountedParseError("quote after closing quote in CSV field");
        }
        if (!field.text.empty()) {
          return CountedParseError("quote inside unquoted CSV field");
        }
        in_quotes = true;
        field.quoted = true;
        any = true;
        ++i;
        break;
      case ',':
        record.push_back(std::move(field));
        field = CsvField{};
        any = true;
        ++i;
        break;
      case '\r':
        // Record terminator: lone CR (classic Mac) or CRLF (DOS) — the CR
        // ends the record and an immediately following LF belongs to the
        // same terminator. The old behavior of silently swallowing the CR
        // glued "a\rb" into one field "ab" and collapsed whole CR-terminated
        // files into a single record.
        if (any || !field.text.empty() || !record.empty()) {
          record.push_back(std::move(field));
          records.push_back(std::move(record));
        }
        field = CsvField{};
        record.clear();
        any = false;
        ++i;
        if (i < csv.size() && csv[i] == '\n') ++i;
        break;
      case '\n':
        if (any || !field.text.empty() || !record.empty()) {
          record.push_back(std::move(field));
          records.push_back(std::move(record));
        }
        field = CsvField{};
        record.clear();
        any = false;
        ++i;
        break;
      default:
        if (field.quoted) {
          return CountedParseError("text after closing quote in CSV field");
        }
        field.text.push_back(c);
        any = true;
        ++i;
        break;
    }
  }
  if (in_quotes) return CountedParseError("unterminated quoted CSV field");
  if (any || !field.text.empty() || !record.empty()) {
    record.push_back(std::move(field));
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace

Result<Relation> ReadCsvRelation(std::string_view name,
                                 std::string_view csv) {
  TABULAR_TRACE_SPAN("csv_read", "io");
  TABULAR_ASSIGN_OR_RETURN(auto records, ParseCsv(csv));
  if (records.empty()) {
    return CountedParseError("CSV needs a header record");
  }
  SymbolVec attrs;
  for (const CsvField& f : records[0]) {
    attrs.push_back(Symbol::Name(f.text));
  }
  Relation out(Symbol::Name(std::string(name)), std::move(attrs));
  TABULAR_RETURN_NOT_OK(out.Validate());
  for (size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != out.arity()) {
      return CountedParseError(
          "CSV record " + std::to_string(r) + " has " +
          std::to_string(records[r].size()) + " fields, header has " +
          std::to_string(out.arity()));
    }
    SymbolVec tuple;
    tuple.reserve(out.arity());
    for (const CsvField& f : records[r]) {
      if (f.text.empty() && !f.quoted) {
        tuple.push_back(Symbol::Null());
      } else {
        tuple.push_back(Symbol::Value(f.text));
      }
    }
    TABULAR_RETURN_NOT_OK(out.Insert(std::move(tuple)));
  }
  static obs::OpCounters counters("io.csv.read");
  counters.Record(records.size() - 1, out.size());
  obs::GetHistogram("io.csv.record_fields").Record(out.arity());
  return out;
}

namespace {

std::string CsvEscape(std::string_view text) {
  bool needs_quotes = text.find_first_of(",\"\n\r") != std::string_view::npos;
  if (text.empty()) return "\"\"";
  if (!needs_quotes) return std::string(text);
  std::string out = "\"";
  for (char c : text) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string WriteCsv(const Relation& relation) {
  TABULAR_TRACE_SPAN("csv_write", "io");
  static obs::Counter& rows_out = obs::GetCounter("io.csv.write.rows_out");
  rows_out.Add(relation.size());
  std::string out;
  for (size_t j = 0; j < relation.arity(); ++j) {
    if (j) out.push_back(',');
    out += CsvEscape(relation.attributes()[j].text());
  }
  out.push_back('\n');
  for (const SymbolVec& t : relation.tuples()) {
    for (size_t j = 0; j < t.size(); ++j) {
      if (j) out.push_back(',');
      if (!t[j].is_null()) out += CsvEscape(t[j].text());
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace tabular::io
