#ifndef TABULAR_IO_GRID_FORMAT_H_
#define TABULAR_IO_GRID_FORMAT_H_

#include <string>
#include <string_view>

#include "core/database.h"
#include "core/table.h"

namespace tabular::io {

using core::Table;
using core::TabularDatabase;
using tabular::Result;

/// The textual grid format for tables: one line per physical row, cells
/// separated by `|`. Cell syntax (faithful to the symbol sorts, unlike
/// the display renderer):
///
///   #        ⊥
///   !text    the name `text`
///   text     the value `text`
///
/// `\|`, `\!`, `\#` and `\\` escape the special characters; surrounding
/// whitespace is trimmed (escape leading/trailing blanks with `\ `).
/// Tables in a database file are separated by blank lines; `--` starts a
/// comment line.
///
/// Example (the bold Sales table of Figure 1's SalesInfo2):
///
///   !Sales   | !Part  | !Sold | !Sold | !Sold | !Sold
///   !Region  | #      | east  | west  | north | south
///   #        | nuts   | 50    | 60    | #     | 40
///   #        | screws | #     | 50    | 60    | 50
///   #        | bolts  | 70    | #     | 40    | #

/// Serializes one table (round-trips through `ParseTable`).
std::string Serialize(const Table& table);

/// Serializes a whole database (blank-line separated).
std::string SerializeDatabase(const TabularDatabase& db);

/// Parses one table; every line must have the same number of cells.
Result<Table> ParseTable(std::string_view text);

/// Parses a database file (possibly empty).
Result<TabularDatabase> ParseDatabase(std::string_view text);

/// Reads/writes database files on disk.
Result<TabularDatabase> LoadDatabaseFile(const std::string& path);
tabular::Status SaveDatabaseFile(const TabularDatabase& db,
                                 const std::string& path);

/// Figure-style aligned rendering (display only; lossy about sorts).
std::string PrettyPrint(const Table& table);
std::string PrettyPrintDatabase(const TabularDatabase& db);

/// GitHub-flavored Markdown rendering: the attribute row becomes the
/// header (name cell included), ⊥ renders as an em-space-free blank, and
/// pipes/escapes are handled. Display only; lossy about symbol sorts.
std::string ToMarkdown(const Table& table);

}  // namespace tabular::io

#endif  // TABULAR_IO_GRID_FORMAT_H_
