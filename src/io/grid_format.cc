#include "io/grid_format.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

namespace tabular::io {

using core::Symbol;
using core::SymbolVec;
using tabular::Status;

namespace {

std::string EscapeCell(Symbol s) {
  if (s.is_null()) return "#";
  std::string out;
  if (s.is_name()) out.push_back('!');
  const std::string& text = s.text();
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    bool needs_escape = c == '|' || c == '\\';
    // A leading marker character in a *value* must be escaped to survive
    // reparsing; inside a name the '!' prefix already disambiguates.
    if (!s.is_name() && i == 0 && (c == '#' || c == '!')) {
      needs_escape = true;
    }
    // Leading/trailing blanks would be trimmed away.
    if ((i == 0 || i + 1 == text.size()) && c == ' ') needs_escape = true;
    if (needs_escape) out.push_back('\\');
    out.push_back(c);
  }
  if (out.empty()) out = "''";  // empty-text value sentinel
  return out;
}

Result<Symbol> UnescapeCell(std::string_view raw) {
  if (raw == "#") return Symbol::Null();
  if (raw == "''") return Symbol::Value("");
  bool is_name = false;
  size_t i = 0;
  if (!raw.empty() && raw[0] == '!') {
    is_name = true;
    i = 1;
  }
  std::string text;
  for (; i < raw.size(); ++i) {
    if (raw[i] == '\\') {
      if (i + 1 >= raw.size()) {
        return Status::ParseError("dangling escape in cell '" +
                                  std::string(raw) + "'");
      }
      text.push_back(raw[++i]);
    } else {
      text.push_back(raw[i]);
    }
  }
  return is_name ? Symbol::Name(text) : Symbol::Value(text);
}

/// Splits a line into cells at unescaped '|', trimming blanks.
Result<SymbolVec> ParseLine(std::string_view line) {
  std::vector<std::string> raw_cells;
  std::string current;
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      current.push_back(line[i]);
      current.push_back(line[i + 1]);
      ++i;
    } else if (line[i] == '|') {
      raw_cells.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(line[i]);
    }
  }
  raw_cells.push_back(std::move(current));
  SymbolVec out;
  out.reserve(raw_cells.size());
  for (std::string& cell : raw_cells) {
    size_t begin = cell.find_first_not_of(" \t");
    size_t end = cell.find_last_not_of(" \t");
    std::string trimmed =
        begin == std::string::npos ? "" : cell.substr(begin, end - begin + 1);
    // Trim must not eat an escaped trailing blank: find_last_not_of keeps
    // "\ " intact because the backslash is non-blank.
    if (trimmed.empty()) {
      return Status::ParseError("empty cell (use '#' for ⊥)");
    }
    TABULAR_ASSIGN_OR_RETURN(Symbol s, UnescapeCell(trimmed));
    out.push_back(s);
  }
  return out;
}

bool IsBlankOrComment(std::string_view line) {
  size_t i = line.find_first_not_of(" \t\r");
  if (i == std::string_view::npos) return true;
  return line.substr(i, 2) == "--";
}

}  // namespace

std::string Serialize(const Table& table) {
  // Column widths for human-readable alignment.
  std::vector<size_t> width(table.num_cols(), 1);
  std::vector<std::vector<std::string>> cells(table.num_rows());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    cells[i].reserve(table.num_cols());
    for (size_t j = 0; j < table.num_cols(); ++j) {
      cells[i].push_back(EscapeCell(table.at(i, j)));
      width[j] = std::max(width[j], cells[i][j].size());
    }
  }
  std::ostringstream out;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (size_t j = 0; j < table.num_cols(); ++j) {
      if (j) out << " | ";
      out << cells[i][j];
      if (j + 1 < table.num_cols()) {
        out << std::string(width[j] - cells[i][j].size(), ' ');
      }
    }
    out << "\n";
  }
  return out.str();
}

std::string SerializeDatabase(const TabularDatabase& db) {
  std::string out;
  for (const Table& t : db.tables()) {
    if (!out.empty()) out += "\n";
    out += Serialize(t);
  }
  return out;
}

Result<Table> ParseTable(std::string_view text) {
  std::vector<SymbolVec> rows;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (IsBlankOrComment(line)) continue;
    TABULAR_ASSIGN_OR_RETURN(SymbolVec cells, ParseLine(line));
    rows.push_back(std::move(cells));
  }
  return Table::FromRows(std::move(rows));
}

Result<TabularDatabase> ParseDatabase(std::string_view text) {
  TabularDatabase db;
  std::vector<SymbolVec> rows;
  auto flush = [&]() -> Status {
    if (rows.empty()) return Status::OK();
    TABULAR_ASSIGN_OR_RETURN(Table t, Table::FromRows(std::move(rows)));
    rows.clear();
    db.Add(std::move(t));
    return Status::OK();
  };
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (IsBlankOrComment(line)) {
      TABULAR_RETURN_NOT_OK(flush());
      continue;
    }
    TABULAR_ASSIGN_OR_RETURN(SymbolVec cells, ParseLine(line));
    rows.push_back(std::move(cells));
  }
  TABULAR_RETURN_NOT_OK(flush());
  return db;
}

Result<TabularDatabase> LoadDatabaseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::InvalidArgument("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseDatabase(buffer.str());
}

Status SaveDatabaseFile(const TabularDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open " + path);
  out << SerializeDatabase(db);
  return out ? Status::OK()
             : Status::Internal("write failed for " + path);
}

std::string PrettyPrint(const Table& table) { return table.ToString(); }

std::string ToMarkdown(const Table& table) {
  auto cell = [](Symbol s) -> std::string {
    if (s.is_null()) return " ";
    std::string out;
    for (char c : s.text()) {
      if (c == '|' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out.empty() ? " " : out;
  };
  std::ostringstream out;
  out << "|";
  for (size_t j = 0; j < table.num_cols(); ++j) {
    out << " " << cell(table.at(0, j)) << " |";
  }
  out << "\n|";
  for (size_t j = 0; j < table.num_cols(); ++j) out << " --- |";
  out << "\n";
  for (size_t i = 1; i < table.num_rows(); ++i) {
    out << "|";
    for (size_t j = 0; j < table.num_cols(); ++j) {
      out << " " << cell(table.at(i, j)) << " |";
    }
    out << "\n";
  }
  return out.str();
}

std::string PrettyPrintDatabase(const TabularDatabase& db) {
  std::string out;
  for (const Table& t : db.tables()) {
    out += PrettyPrint(t);
    out += "\n";
  }
  return out;
}

}  // namespace tabular::io
