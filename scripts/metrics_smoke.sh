#!/usr/bin/env bash
# End-to-end smoke for tabulard's request-scoped observability (PR 8):
#
#   1. Start tabulard with --metrics-port 0 and --slow-ms 0 (log every
#      request) on an ephemeral TCP port; discover both ports from the
#      banner.
#   2. `tabular_cli profile examples/fig1.ta` must print a profile tree
#      with per-operator instantiation and row counts plus counter deltas.
#   3. `tabular_cli slowlog` must show the profiled request (cache status,
#      rows, session/request ids).
#   4. `tabular_cli metrics --prom` and a plain-HTTP GET of /metrics must
#      both pass scripts/check_prometheus.py, including the
#      tabular_server_request_latency histogram.
#   5. SIGTERM the daemon and assert it drains and exits 0.
#
# Usage: scripts/metrics_smoke.sh <build-dir>

set -u

BUILD_DIR="${1:?usage: metrics_smoke.sh <build-dir>}"
REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
DAEMON_BIN="$BUILD_DIR/tools/tabulard"
CLI_BIN="$BUILD_DIR/tools/tabular_cli"
CHECK_PROM="$REPO_DIR/scripts/check_prometheus.py"
DB="$REPO_DIR/examples/sales.tdb"
PROGRAM="$REPO_DIR/examples/fig1.ta"

WORK="$(mktemp -d)"
DAEMON_PID=""

fail() {
  echo "metrics_smoke: FAIL: $*" >&2
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
  rm -rf "$WORK"
  exit 1
}

for bin in "$DAEMON_BIN" "$CLI_BIN"; do
  [ -x "$bin" ] || fail "missing binary: $bin"
done
[ -f "$CHECK_PROM" ] || fail "missing $CHECK_PROM"

# 1. Ephemeral ports for both the wire protocol and the metrics endpoint;
# the banner is the only place they are announced.
"$DAEMON_BIN" --db "$DB" --listen 127.0.0.1:0 --metrics-port 0 --slow-ms 0 \
  > "$WORK/tabulard.out" 2>&1 &
DAEMON_PID=$!

ENDPOINT=""
for _ in $(seq 1 100); do
  ENDPOINT="$(sed -n 's/^tabulard: listening on \([0-9.:]*\).*/\1/p' \
    "$WORK/tabulard.out")"
  [ -n "$ENDPOINT" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "tabulard died during startup"
  sleep 0.1
done
[ -n "$ENDPOINT" ] || fail "no listening banner from tabulard"
METRICS_URL="$(sed -n 's/^tabulard: metrics on \(http[^ ]*\).*/\1/p' \
  "$WORK/tabulard.out")"
[ -n "$METRICS_URL" ] || fail "no metrics banner from tabulard"

for _ in $(seq 1 100); do
  if "$CLI_BIN" --connect "$ENDPOINT" ping >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"$CLI_BIN" --connect "$ENDPOINT" ping >/dev/null \
  || fail "tabulard never answered ping"

# 2. PROFILE over the wire: the tree must attribute instantiations and row
# counts to each statement, and the counter deltas must name the operators.
"$CLI_BIN" --connect "$ENDPOINT" profile "$PROGRAM" > "$WORK/profile.out" \
  || fail "tabular_cli profile failed"
grep -q "inst=" "$WORK/profile.out" \
  || fail "profile tree lacks instantiation counts"
grep -q "group by {Region}" "$WORK/profile.out" \
  || fail "profile tree lacks the group statement"
grep -q '"algebra.group.rows_in":8' "$WORK/profile.out" \
  || fail "profile counter deltas lack algebra.group.rows_in"

# 3. The slow-query log saw the run (threshold 0 records everything).
"$CLI_BIN" --connect "$ENDPOINT" slowlog > "$WORK/slowlog.out" \
  || fail "tabular_cli slowlog failed"
grep -q "prog=" "$WORK/slowlog.out" \
  || fail "slow-query log is empty despite --slow-ms 0"
grep -q "rows=8->" "$WORK/slowlog.out" \
  || fail "slow-query entry lacks snapshot row counts"

# 4. Prometheus exposition: over the wire and over HTTP, both validated.
"$CLI_BIN" --connect "$ENDPOINT" metrics --prom > "$WORK/wire.prom" \
  || fail "tabular_cli metrics --prom failed"
python3 "$CHECK_PROM" --file "$WORK/wire.prom" \
  --expect tabular_server_requests \
  --expect tabular_server_request_latency \
  || fail "wire exposition failed check_prometheus.py"

python3 "$CHECK_PROM" --url "$METRICS_URL" \
  --expect tabular_server_requests \
  --expect tabular_server_request_latency \
  || fail "HTTP exposition failed check_prometheus.py"

# 5. Graceful shutdown: SIGTERM drains and exits 0.
kill -TERM "$DAEMON_PID"
WAIT_STATUS=0
wait "$DAEMON_PID" || WAIT_STATUS=$?
[ "$WAIT_STATUS" -eq 0 ] || fail "tabulard exited $WAIT_STATUS on SIGTERM"
DAEMON_PID=""

rm -rf "$WORK"
echo "metrics_smoke: OK: profile tree, slow-query log, and validated" \
     "Prometheus exposition over wire and HTTP"
