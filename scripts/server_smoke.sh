#!/usr/bin/env bash
# End-to-end smoke for the tabulard server (PR 6, CI job):
#
#   1. Run the Fig-1 restructuring example through the single-shot
#      interpreter (tabular_shell) to produce the golden database.
#   2. Start tabulard on a unix socket, run the same program through
#      tabular_cli, dump the committed result.
#   3. Byte-compare server result against the golden.
#   4. SIGTERM the daemon and assert it drains and exits 0.
#   5. Restart with admission control (TABULAR_ADMIT_MAX_ROWS): the same
#      restructuring program — statically unbounded through MERGE — must
#      now be refused before execution, while a bounded program still runs.
#
# Usage: scripts/server_smoke.sh <build-dir>

set -u

BUILD_DIR="${1:?usage: server_smoke.sh <build-dir>}"
REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
SHELL_BIN="$BUILD_DIR/examples/tabular_shell"
DAEMON_BIN="$BUILD_DIR/tools/tabulard"
CLI_BIN="$BUILD_DIR/tools/tabular_cli"
DB="$REPO_DIR/examples/sales.tdb"
PROGRAM="$REPO_DIR/examples/sales_restructuring.ta"

WORK="$(mktemp -d)"
SOCK="$WORK/tabulard.sock"
DAEMON_PID=""

fail() {
  echo "server_smoke: FAIL: $*" >&2
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
  rm -rf "$WORK"
  exit 1
}

for bin in "$SHELL_BIN" "$DAEMON_BIN" "$CLI_BIN"; do
  [ -x "$bin" ] || fail "missing binary: $bin"
done

# 1. The single-shot golden.
"$SHELL_BIN" "$DB" "$PROGRAM" "$WORK/golden.tdb" \
  || fail "tabular_shell failed on $PROGRAM"

# 2. The server path.
"$DAEMON_BIN" --db "$DB" --unix "$SOCK" --quiet &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  if "$CLI_BIN" --unix "$SOCK" ping >/dev/null 2>&1; then
    break
  fi
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "tabulard died during startup"
  sleep 0.1
done
"$CLI_BIN" --unix "$SOCK" ping >/dev/null || fail "tabulard never answered ping"

"$CLI_BIN" --unix "$SOCK" run "$PROGRAM" || fail "tabular_cli run failed"
"$CLI_BIN" --unix "$SOCK" dump > "$WORK/server.tdb" \
  || fail "tabular_cli dump failed"

# 3. Byte identity between the server-committed database and the golden.
cmp "$WORK/golden.tdb" "$WORK/server.tdb" \
  || fail "server result differs from the single-shot interpreter golden"

# A second session still sees the committed version.
"$CLI_BIN" --unix "$SOCK" tables | grep -q "Sales" \
  || fail "committed tables not visible to a fresh session"

# 4. Graceful shutdown: SIGTERM drains and exits 0.
kill -TERM "$DAEMON_PID"
WAIT_STATUS=0
wait "$DAEMON_PID" || WAIT_STATUS=$?
[ "$WAIT_STATUS" -eq 0 ] || fail "tabulard exited $WAIT_STATUS on SIGTERM"
[ ! -e "$SOCK" ] || fail "tabulard left its unix socket behind"
DAEMON_PID=""

# 5. Admission control: under a row budget (seeded from the environment,
# the deployment path), the statically-unbounded restructuring program is
# rejected before execution; a bounded program on the same daemon runs.
SOCK2="$WORK/tabulard-admit.sock"
TABULAR_ADMIT_MAX_ROWS=1000000 \
  "$DAEMON_BIN" --db "$DB" --unix "$SOCK2" --quiet &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  if "$CLI_BIN" --unix "$SOCK2" ping >/dev/null 2>&1; then
    break
  fi
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "admission tabulard died during startup"
  sleep 0.1
done

ADMIT_ERR="$WORK/admit.err"
if "$CLI_BIN" --unix "$SOCK2" run "$PROGRAM" 2> "$ADMIT_ERR"; then
  fail "admission-controlled tabulard executed a statically-unbounded program"
fi
grep -q "AdmissionRejected" "$ADMIT_ERR" \
  || fail "rejection did not carry AdmissionRejected: $(cat "$ADMIT_ERR")"
grep -q "statically unbounded" "$ADMIT_ERR" \
  || fail "rejection did not name the unbounded verdict: $(cat "$ADMIT_ERR")"

"$CLI_BIN" --unix "$SOCK2" run "$REPO_DIR/examples/fig1.ta" \
  || fail "admission-controlled tabulard refused a bounded program"

kill -TERM "$DAEMON_PID"
WAIT_STATUS=0
wait "$DAEMON_PID" || WAIT_STATUS=$?
[ "$WAIT_STATUS" -eq 0 ] || fail "admission tabulard exited $WAIT_STATUS on SIGTERM"
DAEMON_PID=""

# 6. A misconfigured admission limit fails loudly instead of silently
# disabling the safety rail (strtoull of garbage would yield 0 = off).
if TABULAR_ADMIT_MAX_ROWS=notanumber \
    "$DAEMON_BIN" --db "$DB" --unix "$WORK/bad.sock" --quiet 2> "$WORK/bad.err"; then
  fail "tabulard started with TABULAR_ADMIT_MAX_ROWS=notanumber"
fi
grep -q "TABULAR_ADMIT_MAX_ROWS" "$WORK/bad.err" \
  || fail "bad admission limit did not name the variable: $(cat "$WORK/bad.err")"
if "$DAEMON_BIN" --db "$DB" --unix "$WORK/bad.sock" --quiet \
    --max-est-rows 10x 2> "$WORK/bad2.err"; then
  fail "tabulard started with --max-est-rows 10x"
fi
grep -q "max-est-rows" "$WORK/bad2.err" \
  || fail "bad --max-est-rows did not name the flag: $(cat "$WORK/bad2.err")"

rm -rf "$WORK"
echo "server_smoke: OK: server output byte-identical to single-shot golden," \
     "graceful shutdown exited 0, admission rejected the unbounded program," \
     "misconfigured limits refused at startup"
