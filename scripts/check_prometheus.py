#!/usr/bin/env python3
"""Validates Prometheus text exposition output (format 0.0.4).

Checks the output of `obs::RenderPrometheus()` — served by `tabulard
--metrics-port` at GET /metrics and by `tabular_cli metrics --prom` —
for structural correctness:

  * every sample line belongs to a metric introduced by a `# TYPE` line,
    and metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
  * TYPE is one of counter, gauge, histogram; counter/gauge metrics have
    exactly one sample; sample values are finite numbers (counters
    non-negative)
  * histogram series are complete and coherent: cumulative `_bucket{le=..}`
    samples with strictly increasing `le` bounds and non-decreasing
    cumulative counts, a final `le="+Inf"` bucket, and `_sum`/`_count`
    samples with `_count` equal to the +Inf bucket

Usage:
  check_prometheus.py --file metrics.txt [--expect tabular_server_requests]
  check_prometheus.py --url http://127.0.0.1:9464/metrics
  some_command | check_prometheus.py     # reads stdin when neither given

Exit status 0 when every check passes, 1 otherwise.
"""

import argparse
import math
import re
import sys
import urllib.request

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+\d+)?$")


def fail(msg):
    print(f"check_prometheus: FAIL: {msg}", file=sys.stderr)
    return 1


def parse_le(label_text):
    """The value of the `le` label, or None."""
    if not label_text:
        return None
    m = re.search(r'le="([^"]*)"', label_text)
    return m.group(1) if m else None


def check_text(text):
    types = {}          # metric name -> counter|gauge|histogram
    samples = {}        # metric name -> [(labels, value)]
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                return fail(f"line {lineno}: malformed TYPE line: {line!r}")
            _, _, name, kind = parts
            if not NAME_RE.match(name):
                return fail(f"line {lineno}: bad metric name {name!r}")
            if kind not in ("counter", "gauge", "histogram"):
                return fail(f"line {lineno}: unknown metric type {kind!r}")
            if name in types:
                return fail(f"line {lineno}: duplicate TYPE for {name!r}")
            types[name] = kind
            continue
        if line.startswith("#"):
            return fail(f"line {lineno}: unknown comment form: {line!r}")
        m = SAMPLE_RE.match(line)
        if not m:
            return fail(f"line {lineno}: malformed sample line: {line!r}")
        name = m.group("name")
        try:
            value = float(m.group("value"))
        except ValueError:
            return fail(f"line {lineno}: non-numeric value in: {line!r}")
        if not math.isfinite(value):
            return fail(f"line {lineno}: non-finite value in: {line!r}")
        # A histogram's series are name_bucket/name_sum/name_count.
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in types:
                base = name[:-len(suffix)]
                break
        if base not in types:
            return fail(f"line {lineno}: sample for undeclared metric "
                        f"{name!r} (no preceding # TYPE)")
        samples.setdefault(base, []).append(
            (name, parse_le(m.group("labels")), value))

    if not types:
        return fail("no metrics found (empty exposition?)")

    for name, kind in types.items():
        series = samples.get(name, [])
        if not series:
            return fail(f"{name}: TYPE declared but no samples")
        if kind in ("counter", "gauge"):
            if len(series) != 1:
                return fail(f"{name}: expected 1 sample, got {len(series)}")
            sample_name, le, value = series[0]
            if sample_name != name or le is not None:
                return fail(f"{name}: unexpected sample {sample_name!r}")
            if kind == "counter" and value < 0:
                return fail(f"{name}: negative counter value {value}")
            continue
        # Histogram: buckets must be cumulative/monotone, +Inf == _count.
        buckets = [(le, v) for (n, le, v) in series if n == name + "_bucket"]
        sums = [v for (n, le, v) in series if n == name + "_sum"]
        counts = [v for (n, le, v) in series if n == name + "_count"]
        if not buckets:
            return fail(f"{name}: histogram without _bucket samples")
        if len(sums) != 1 or len(counts) != 1:
            return fail(f"{name}: histogram needs exactly one _sum and one "
                        f"_count sample")
        if buckets[-1][0] != "+Inf":
            return fail(f"{name}: last bucket le={buckets[-1][0]!r}, "
                        f"expected +Inf")
        prev_bound = -math.inf
        prev_cum = -math.inf
        for le, cum in buckets:
            bound = math.inf if le == "+Inf" else float(le)
            if bound <= prev_bound:
                return fail(f"{name}: bucket bounds not strictly "
                            f"increasing at le={le}")
            if cum < prev_cum:
                return fail(f"{name}: cumulative bucket counts decrease "
                            f"at le={le} ({cum} < {prev_cum})")
            prev_bound, prev_cum = bound, cum
        if buckets[-1][1] != counts[0]:
            return fail(f"{name}: +Inf bucket {buckets[-1][1]} != _count "
                        f"{counts[0]}")
        if counts[0] > 0 and sums[0] < 0:
            return fail(f"{name}: negative _sum {sums[0]}")

    return 0, types


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--file", help="exposition text file to validate")
    parser.add_argument("--url", help="scrape this URL and validate the body")
    parser.add_argument("--expect", action="append", default=[],
                        help="metric name that must be present (repeatable)")
    args = parser.parse_args()

    if args.url:
        try:
            with urllib.request.urlopen(args.url, timeout=10) as resp:
                text = resp.read().decode("utf-8")
        except OSError as e:
            return fail(f"cannot scrape {args.url}: {e}")
    elif args.file:
        try:
            with open(args.file, encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            return fail(f"cannot read {args.file}: {e}")
    else:
        text = sys.stdin.read()

    result = check_text(text)
    if isinstance(result, int):
        return result
    _, types = result

    for want in args.expect:
        if want not in types:
            return fail(f"expected metric {want!r} not present "
                        f"(have {len(types)} metrics)")

    print(f"check_prometheus: OK: {len(types)} metrics "
          f"({sum(1 for k in types.values() if k == 'histogram')} "
          f"histograms), {len(args.expect)} expected names present")
    return 0


if __name__ == "__main__":
    sys.exit(main())
