#!/usr/bin/env python3
"""Validates BENCH_*.json files emitted by the benchmark binaries.

Checks that a file is well-formed google-benchmark JSON output, that the
benchmark names it contains match what the caller expects, and that the
expected per-benchmark counters (attached via tabular::bench::CounterDeltas)
are present and finite.

Usage:
  check_bench_json.py --json BENCH_fig4_group.json \
      --expect BM_GroupByRegionOnSold --expect-counter ta_rows_in

  # Run a bench binary first (it writes its default BENCH_*.json into the
  # current directory), then validate:
  check_bench_json.py --json BENCH_fig4_group.json \
      --expect BM_GroupByRegionOnSold --expect-counter ta_rows_in \
      --run ./bench/bench_fig4_group --benchmark_min_time=0.01s

  # Enforce a floor on a counter (acceptance gates, e.g. the server bench
  # must reach 64 connections with a >=90% cache hit rate):
  check_bench_json.py --json BENCH_server.json \
      --min-counter ta_connections=64 --min-counter ta_cache_hit_rate=0.9

  # Enforce a ceiling (latency regression gates — every entry carrying the
  # counter must stay at or below the bound):
  check_bench_json.py --json BENCH_server.json --max-counter ta_p99_ms=100

Exit status 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import math
import subprocess
import sys


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    return 1


def parse_key_value(flag):
    def parse(spec):
        key, sep, value = spec.partition("=")
        if not sep or not key:
            raise argparse.ArgumentTypeError(
                f"{flag} expects KEY=VALUE, got {spec!r}")
        try:
            return key, float(value)
        except ValueError as e:
            raise argparse.ArgumentTypeError(f"{flag} {spec!r}: {e}") from e
    return parse


def check_file(path, expects, expect_counters, min_counters, max_counters):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        return fail(f"{path}: not found")
    except json.JSONDecodeError as e:
        return fail(f"{path}: invalid JSON: {e}")

    if "context" not in doc:
        return fail(f"{path}: missing 'context' (not google-benchmark output?)")
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        return fail(f"{path}: no 'benchmarks' array")

    names = []
    for b in benchmarks:
        name = b.get("name")
        if not isinstance(name, str) or not name:
            return fail(f"{path}: benchmark entry without a name")
        names.append(name)
        if b.get("error_occurred"):
            return fail(f"{path}: {name}: error_occurred: "
                        f"{b.get('error_message', '?')}")
        for key in ("real_time", "cpu_time"):
            v = b.get(key)
            if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
                return fail(f"{path}: {name}: bad {key}: {v!r}")

    for want in expects:
        if not any(want in n for n in names):
            return fail(f"{path}: no benchmark name contains '{want}' "
                        f"(names: {names[:5]}...)")

    for key in expect_counters:
        holders = [b for b in benchmarks if key in b]
        if not holders:
            return fail(f"{path}: counter '{key}' missing from every "
                        f"benchmark entry")
        for b in holders:
            v = b[key]
            if not isinstance(v, (int, float)) or not math.isfinite(v):
                return fail(f"{path}: {b['name']}: counter '{key}' not a "
                            f"finite number: {v!r}")

    for key, floor in min_counters:
        holders = [b for b in benchmarks if key in b]
        if not holders:
            return fail(f"{path}: counter '{key}' missing from every "
                        f"benchmark entry (--min-counter {key}={floor})")
        best = max(float(b[key]) for b in holders)
        if not math.isfinite(best) or best < floor:
            return fail(f"{path}: counter '{key}' max {best} is below the "
                        f"required floor {floor}")

    for key, ceiling in max_counters:
        holders = [b for b in benchmarks if key in b]
        if not holders:
            return fail(f"{path}: counter '{key}' missing from every "
                        f"benchmark entry (--max-counter {key}={ceiling})")
        # A ceiling is a regression gate: every run configuration (e.g.
        # every connection count) must stay under it, so check the worst.
        worst = max(float(b[key]) for b in holders)
        if not math.isfinite(worst) or worst > ceiling:
            return fail(f"{path}: counter '{key}' max {worst} exceeds the "
                        f"allowed ceiling {ceiling}")

    print(f"check_bench_json: OK: {path}: {len(benchmarks)} benchmarks, "
          f"{len(expect_counters)} expected counters present, "
          f"{len(min_counters)} counter floors met, "
          f"{len(max_counters)} counter ceilings met")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="append", default=[], required=True,
                        help="BENCH_*.json file to validate (repeatable)")
    parser.add_argument("--expect", action="append", default=[],
                        help="substring required among benchmark names")
    parser.add_argument("--expect-counter", action="append", default=[],
                        help="counter key required on at least one benchmark")
    parser.add_argument("--min-counter", action="append", default=[],
                        type=parse_key_value("--min-counter"),
                        metavar="KEY=VALUE",
                        help="require some benchmark entry's counter KEY to "
                             "be >= VALUE")
    parser.add_argument("--max-counter", action="append", default=[],
                        type=parse_key_value("--max-counter"),
                        metavar="KEY=VALUE",
                        help="require every benchmark entry carrying counter "
                             "KEY to be <= VALUE")
    parser.add_argument("--run", nargs=argparse.REMAINDER, default=None,
                        help="bench command to execute before validating")
    args = parser.parse_args()

    if args.run:
        proc = subprocess.run(args.run)
        if proc.returncode != 0:
            return fail(f"bench command exited {proc.returncode}: "
                        f"{' '.join(args.run)}")

    status = 0
    for path in args.json:
        status |= check_file(path, args.expect, args.expect_counter,
                             args.min_counter, args.max_counter)
    return status


if __name__ == "__main__":
    sys.exit(main())
