#!/usr/bin/env bash
# Runs clang-tidy over the library and tool sources using the compile
# database of a CMake build directory.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]     (default: build)
#
# Degrades gracefully: exits 0 with a notice when clang-tidy is not
# installed (the CI workflow provides it; local gcc-only containers
# don't have to).
set -euo pipefail

BUILD_DIR="${1:-build}"
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: clang-tidy not found; skipping (CI runs it)" >&2
  exit 0
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Library + tool translation units; per-directory .clang-tidy files pick
# the check set (src/obs and src/exec add concurrency-mt-unsafe).
FILES=$(find src tools -name '*.cc' | sort)

if command -v run-clang-tidy >/dev/null 2>&1; then
  # shellcheck disable=SC2086
  run-clang-tidy -p "${BUILD_DIR}" -quiet ${FILES}
else
  STATUS=0
  for f in ${FILES}; do
    clang-tidy -p "${BUILD_DIR}" --quiet "$f" || STATUS=1
  done
  exit "${STATUS}"
fi
