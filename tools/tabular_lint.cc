// tabular_lint: static semantic analysis for tabular-algebra programs.
//
// Reads .ta program files, runs the src/analysis dataflow pass, and prints
// clang-style diagnostics. The initial schema is open (anything may exist)
// unless pinned with --empty-db, --db, or --csv.
//
// Exit codes (CI-friendly):
//   0  no diagnostics at the failing severity
//   1  errors found (or warnings, under --werror)
//   2  usage, file-read, or parse failure

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/cost.h"
#include "analysis/diagnostics.h"
#include "analysis/shape.h"
#include "core/database.h"
#include "core/status.h"
#include "io/csv.h"
#include "io/grid_format.h"
#include "lang/ast.h"
#include "lang/interpreter.h"
#include "lang/optimizer.h"
#include "lang/parser.h"
#include "obs/profile.h"
#include "relational/canonical.h"

namespace {

constexpr const char* kUsage =
    R"(usage: tabular_lint [options] <program.ta>...

Statically analyzes tabular-algebra programs: shape inference over every
statement plus diagnostics for arity errors, operator contract violations,
use-before-definition, dead stores, and unreachable or non-terminating
while loops.

options:
  --db <file>        initial schema from a grid-format database file
  --csv <name=file>  add relation <name> from a CSV file (repeatable)
  --empty-db         start from an empty database (default: open schema,
                     every table may exist)
  --werror           exit 1 on warnings too (and, with --optimize, on
                     validator-rejected rewrites)
  --no-dead-stores   suppress dead-store warnings
  --json             machine-readable output: a JSON array with one object
                     per diagnostic (file, severity, path, message[, note])
  --optimize         run the translation-validated rewrite engine and print
                     each certified rewrite as a diff plus a summary report
  --cost             print the static cost table: per-statement row/byte/work
                     bounds from the shape analysis ("∞" = statically
                     unbounded) plus program totals — the same numbers
                     tabulard's admission control checks. Costs the optimized
                     plan when combined with --optimize. A statically
                     unbounded program warns (exit 1 under --werror).
  --cost-budget-rows <n>   with --cost: warn when the peak row bound exceeds n
  --cost-budget-bytes <n>  with --cost: warn when the peak byte bound exceeds n
  --cost-budget-work <n>   with --cost: warn when total work bound exceeds n
  -h, --help         show this help
)";

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using tabular::analysis::AbstractDatabase;
  using tabular::analysis::AnalysisResult;
  using tabular::analysis::Diagnostic;
  using tabular::analysis::Severity;

  std::vector<std::string> files;
  tabular::core::TabularDatabase schema_db;
  bool have_schema = false;
  bool empty_db = false;
  bool werror = false;
  bool json = false;
  bool optimize = false;
  bool cost = false;
  uint64_t cost_budget_rows = 0;   // 0 = no budget
  uint64_t cost_budget_bytes = 0;
  uint64_t cost_budget_work = 0;
  tabular::analysis::AnalyzerOptions options;

  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "tabular_lint: error: " << flag
                << " requires a value\n";
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--empty-db") {
      empty_db = true;
    } else if (arg == "--no-dead-stores") {
      options.check_dead_stores = false;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--optimize") {
      optimize = true;
    } else if (arg == "--cost") {
      cost = true;
    } else if (arg == "--cost-budget-rows") {
      const char* value = need_value(i, "--cost-budget-rows");
      if (value == nullptr) return 2;
      cost_budget_rows = std::strtoull(value, nullptr, 10);
    } else if (arg == "--cost-budget-bytes") {
      const char* value = need_value(i, "--cost-budget-bytes");
      if (value == nullptr) return 2;
      cost_budget_bytes = std::strtoull(value, nullptr, 10);
    } else if (arg == "--cost-budget-work") {
      const char* value = need_value(i, "--cost-budget-work");
      if (value == nullptr) return 2;
      cost_budget_work = std::strtoull(value, nullptr, 10);
    } else if (arg == "--db") {
      const char* value = need_value(i, "--db");
      if (value == nullptr) return 2;
      auto db = tabular::io::LoadDatabaseFile(value);
      if (!db.ok()) {
        std::cerr << "tabular_lint: error: cannot load database '" << value
                  << "': " << db.status().message() << "\n";
        return 2;
      }
      for (const tabular::core::Table& t : db->tables()) {
        schema_db.Add(t);
      }
      have_schema = true;
    } else if (arg == "--csv") {
      const char* value = need_value(i, "--csv");
      if (value == nullptr) return 2;
      const std::string spec = value;
      const size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::cerr << "tabular_lint: error: --csv expects <name=file>, got '"
                  << spec << "'\n";
        return 2;
      }
      const std::string name = spec.substr(0, eq);
      const std::string path = spec.substr(eq + 1);
      std::string csv;
      if (!ReadFile(path, &csv)) {
        std::cerr << "tabular_lint: error: cannot read '" << path << "'\n";
        return 2;
      }
      auto relation = tabular::io::ReadCsvRelation(name, csv);
      if (!relation.ok()) {
        std::cerr << "tabular_lint: error: cannot parse CSV '" << path
                  << "': " << relation.status().message() << "\n";
        return 2;
      }
      schema_db.Add(tabular::rel::RelationToTable(*relation));
      have_schema = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "tabular_lint: error: unknown option '" << arg << "'\n"
                << kUsage;
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (files.empty()) {
    std::cerr << "tabular_lint: error: no program files given\n" << kUsage;
    return 2;
  }

  // The initial abstract state: an explicit schema is exact; --empty-db
  // means nothing exists until the program creates it; the default is the
  // open schema (no use-before-definition or shape diagnostics possible
  // for tables the program did not itself define).
  AbstractDatabase initial;
  if (have_schema) {
    initial = AbstractDatabase::FromDatabase(schema_db);
    if (empty_db) {
      std::cerr << "tabular_lint: error: --empty-db conflicts with "
                   "--db/--csv\n";
      return 2;
    }
  } else if (empty_db) {
    initial = AbstractDatabase::Empty();
  } else {
    initial = AbstractDatabase::Unknown();
  }

  size_t errors = 0, warnings = 0;
  size_t rewrites_applied = 0, rewrites_rejected = 0;
  bool io_failure = false;
  std::vector<std::string> json_objects;
  for (const std::string& file : files) {
    std::string source;
    if (!ReadFile(file, &source)) {
      std::cerr << "tabular_lint: error: cannot read '" << file << "'\n";
      io_failure = true;
      continue;
    }
    auto program = tabular::lang::ParseProgram(source);
    if (!program.ok()) {
      Diagnostic parse_error;
      parse_error.severity = Severity::kError;
      parse_error.message = program.status().message();
      if (json) {
        json_objects.push_back(
            tabular::analysis::RenderJson(parse_error, file));
      } else {
        std::cout << file << ": error: " << program.status().message()
                  << "\n";
      }
      io_failure = true;
      continue;
    }
    AnalysisResult result =
        tabular::analysis::AnalyzeProgram(*program, initial, options);
    if (json) {
      for (const Diagnostic& d : result.diagnostics) {
        json_objects.push_back(tabular::analysis::RenderJson(d, file));
      }
    } else {
      std::cout << tabular::analysis::RenderAll(result.diagnostics, file);
    }
    errors += tabular::analysis::CountSeverity(result.diagnostics,
                                               Severity::kError);
    warnings += tabular::analysis::CountSeverity(result.diagnostics,
                                                 Severity::kWarning);

    // The plan --cost reports on: the certified rewrite when --optimize is
    // given (what the interpreter would actually run), the parse otherwise.
    tabular::lang::Program plan = *program;
    if (optimize) {
      tabular::lang::OptimizeStats stats;
      plan = tabular::lang::OptimizeProgram(*program, initial, {}, &stats);
      rewrites_applied += stats.applied;
      rewrites_rejected += stats.rejected;
      for (const tabular::lang::RewriteRecord& r : stats.records) {
        if (json) {
          json_objects.push_back(tabular::lang::RenderRewriteJson(r, file));
          continue;
        }
        std::cout << file << ":" << r.path << ": optimize: " << r.rule
                  << (r.certified ? " (certified)" : " (rejected)") << "\n";
        std::cout << "  - " << r.before << "\n";
        if (!r.after.empty()) std::cout << "  + " << r.after << "\n";
        if (!r.reason.empty()) {
          std::cout << "  reason: " << r.reason
                    << (r.divergent_at.empty()
                            ? ""
                            : " (diverged at " + r.divergent_at + ")")
                    << "\n";
        }
      }
      if (json) {
        // Per-file summary so CI logs can tie rejected counts to files
        // without re-deriving them from the rewrite objects.
        json_objects.push_back(
            "{\"file\":\"" + tabular::analysis::JsonEscape(file) +
            "\",\"rewrites_applied\":" + std::to_string(stats.applied) +
            ",\"rewrites_rejected\":" + std::to_string(stats.rejected) + "}");
      }
    }

    if (cost) {
      using tabular::analysis::FormatCost;
      const tabular::analysis::CostReport report =
          tabular::analysis::EstimateCost(plan, initial);
      auto cost_warn = [&](const std::string& path, const std::string& msg) {
        ++warnings;
        if (json) {
          Diagnostic d;
          d.severity = Severity::kWarning;
          d.path = path;
          d.message = msg;
          json_objects.push_back(tabular::analysis::RenderJson(d, file));
        } else {
          std::cout << file << ":" << path << ": warning: " << msg << "\n";
        }
      };
      if (json) {
        // Bounds are strings, not numbers: "∞" has no JSON-number form.
        for (const tabular::analysis::StatementCost& c : report.statements) {
          json_objects.push_back(
              "{\"file\":\"" + tabular::analysis::JsonEscape(file) +
              "\",\"cost_path\":\"" + c.path + "\",\"est_rows\":\"" +
              FormatCost(c.out_rows) + "\",\"est_bytes\":\"" +
              FormatCost(c.out_bytes) + "\",\"est_work\":\"" +
              FormatCost(c.work) + "\"}");
        }
        json_objects.push_back(
            "{\"file\":\"" + tabular::analysis::JsonEscape(file) +
            "\",\"cost_total_work\":\"" + FormatCost(report.total_work) +
            "\",\"cost_peak_rows\":\"" + FormatCost(report.peak_rows) +
            "\",\"cost_peak_bytes\":\"" + FormatCost(report.peak_bytes) +
            "\",\"cost_unbounded_at\":\"" + report.unbounded_path + "\"}");
      } else {
        tabular::obs::RenderProfileOptions render;
        render.show_times = false;
        std::cout << tabular::obs::RenderProfile(
            tabular::lang::Explain(plan, initial), render);
      }
      if (report.unbounded()) {
        cost_warn(report.unbounded_path,
                  "statically unbounded resource use (cost analysis)");
      }
      if (cost_budget_rows > 0 && report.peak_rows > cost_budget_rows) {
        cost_warn(report.peak_rows_path,
                  "peak row bound " + FormatCost(report.peak_rows) +
                      " exceeds budget " + std::to_string(cost_budget_rows));
      }
      if (cost_budget_bytes > 0 && report.peak_bytes > cost_budget_bytes) {
        cost_warn(report.peak_bytes_path,
                  "peak byte bound " + FormatCost(report.peak_bytes) +
                      " exceeds budget " + std::to_string(cost_budget_bytes));
      }
      if (cost_budget_work > 0 && report.total_work > cost_budget_work) {
        cost_warn("exit",
                  "total work bound " + FormatCost(report.total_work) +
                      " exceeds budget " + std::to_string(cost_budget_work));
      }
    }
  }

  if (json) {
    std::cout << "[";
    for (size_t i = 0; i < json_objects.size(); ++i) {
      std::cout << (i == 0 ? "\n" : ",\n") << json_objects[i];
    }
    std::cout << (json_objects.empty() ? "]\n" : "\n]\n");
  } else {
    if (errors + warnings > 0) {
      std::cout << errors << " error(s), " << warnings << " warning(s)\n";
    }
    if (optimize) {
      std::cout << rewrites_applied << " rewrite(s) applied, "
                << rewrites_rejected << " rejected\n";
    }
  }
  if (io_failure) return 2;
  if (errors > 0 || (werror && (warnings > 0 || rewrites_rejected > 0))) {
    return 1;
  }
  return 0;
}
