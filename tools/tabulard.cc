// tabulard: the concurrent multi-session tabular-algebra server.
//
// Serves TA programs over the length-prefixed wire protocol of
// src/server/wire.h (localhost TCP or a unix socket) under snapshot
// isolation: every request executes against an immutable database version;
// commits install a new version with an atomic first-committer-wins swap.
// Parsed + analyzed + optimizer-certified programs are cached per
// (program text, schema shape).
//
//   tabulard --db examples/sales.tdb --listen 127.0.0.1:7690
//   tabulard --db examples/sales.tdb --unix /tmp/tabulard.sock
//
// SIGINT/SIGTERM shut down gracefully: new sessions are refused, in-flight
// requests drain (bounded by --drain-seconds), and the process exits 0.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <unistd.h>

#include "core/database.h"
#include "core/status.h"
#include "io/grid_format.h"
#include "server/server.h"

namespace {

constexpr const char* kUsage =
    R"(usage: tabulard [options]

options:
  --db <file>          initial database (grid format; default: empty)
  --listen <host:port> listen on localhost TCP (port 0 = ephemeral)
  --unix <path>        listen on a unix socket instead
  --cache-capacity <n> compiled-program cache entries (default 128)
  --no-optimize        skip the certified rewrite engine when compiling
  --drain-seconds <s>  graceful-shutdown drain deadline (default 5)
  --max-sessions <n>   concurrent session limit (default 1024)
  --slow-ms <ms>       slow-query log threshold in milliseconds
                       (default 100, or TABULAR_SLOW_MS; negative disables;
                       drain with `tabular_cli slowlog`)
  --metrics-port <n>   serve Prometheus text format on plain-HTTP
                       GET /metrics at this port (0 = ephemeral; default off)
  --max-est-rows <n>   admission control: reject programs whose static row
                       estimate exceeds n before executing them (default 0 =
                       off, or TABULAR_ADMIT_MAX_ROWS); statically unbounded
                       programs are rejected whenever admission is on
  --max-est-bytes <n>  admission control on the static peak byte estimate
                       (default 0 = off, or TABULAR_ADMIT_MAX_BYTES)
  --quiet              no startup banner
  -h, --help           show this help
)";

// Admission limits are safety rails: a value that does not parse exactly
// as a non-negative decimal must fail loudly, not silently become 0 (= the
// limit the operator thinks is in force is off).
bool ParseLimit(const char* s, uint64_t* out) {
  if (s == nullptr || *s < '0' || *s > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || *end != '\0') return false;
  *out = v;
  return true;
}

// Signal handling: the handler only writes one byte to a self-pipe
// (async-signal-safe); the main thread blocks on the pipe and runs the
// graceful shutdown outside signal context.
int g_signal_pipe[2] = {-1, -1};

void OnShutdownSignal(int /*sig*/) {
  const char byte = 1;
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

}  // namespace

int main(int argc, char** argv) {
  using tabular::server::Server;
  using tabular::server::ServerOptions;

  ServerOptions options;
  std::string db_path;
  std::string listen = "127.0.0.1:0";
  bool quiet = false;

  // TABULAR_SLOW_MS seeds the slow-query threshold; --slow-ms overrides it.
  auto slow_ms_to_micros = [](double ms) {
    return ms < 0 ? tabular::obs::QueryLog::kDisabled
                  : static_cast<uint64_t>(ms * 1000.0);
  };
  if (const char* env = std::getenv("TABULAR_SLOW_MS");
      env != nullptr && *env != '\0') {
    options.slow_query_micros = slow_ms_to_micros(std::strtod(env, nullptr));
  }
  // Same pattern for the admission limits: env seeds, flag overrides.
  if (const char* env = std::getenv("TABULAR_ADMIT_MAX_ROWS");
      env != nullptr && *env != '\0') {
    if (!ParseLimit(env, &options.max_est_rows)) {
      std::fprintf(stderr,
                   "tabulard: error: TABULAR_ADMIT_MAX_ROWS='%s' is not a "
                   "row count\n",
                   env);
      return 2;
    }
  }
  if (const char* env = std::getenv("TABULAR_ADMIT_MAX_BYTES");
      env != nullptr && *env != '\0') {
    if (!ParseLimit(env, &options.max_est_bytes)) {
      std::fprintf(stderr,
                   "tabulard: error: TABULAR_ADMIT_MAX_BYTES='%s' is not a "
                   "byte count\n",
                   env);
      return 2;
    }
  }

  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "tabulard: error: %s requires a value\n", flag);
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--db") {
      const char* v = need_value(i, "--db");
      if (v == nullptr) return 2;
      db_path = v;
    } else if (arg == "--listen") {
      const char* v = need_value(i, "--listen");
      if (v == nullptr) return 2;
      listen = v;
    } else if (arg == "--unix") {
      const char* v = need_value(i, "--unix");
      if (v == nullptr) return 2;
      options.unix_path = v;
    } else if (arg == "--cache-capacity") {
      const char* v = need_value(i, "--cache-capacity");
      if (v == nullptr) return 2;
      options.cache.capacity = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--no-optimize") {
      options.cache.optimize = false;
    } else if (arg == "--drain-seconds") {
      const char* v = need_value(i, "--drain-seconds");
      if (v == nullptr) return 2;
      options.drain_seconds = std::strtod(v, nullptr);
    } else if (arg == "--max-sessions") {
      const char* v = need_value(i, "--max-sessions");
      if (v == nullptr) return 2;
      options.max_sessions =
          static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--slow-ms") {
      const char* v = need_value(i, "--slow-ms");
      if (v == nullptr) return 2;
      options.slow_query_micros = slow_ms_to_micros(std::strtod(v, nullptr));
    } else if (arg == "--metrics-port") {
      const char* v = need_value(i, "--metrics-port");
      if (v == nullptr) return 2;
      options.metrics_port =
          static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--max-est-rows") {
      const char* v = need_value(i, "--max-est-rows");
      if (v == nullptr) return 2;
      if (!ParseLimit(v, &options.max_est_rows)) {
        std::fprintf(stderr,
                     "tabulard: error: --max-est-rows '%s' is not a row "
                     "count\n",
                     v);
        return 2;
      }
    } else if (arg == "--max-est-bytes") {
      const char* v = need_value(i, "--max-est-bytes");
      if (v == nullptr) return 2;
      if (!ParseLimit(v, &options.max_est_bytes)) {
        std::fprintf(stderr,
                     "tabulard: error: --max-est-bytes '%s' is not a byte "
                     "count\n",
                     v);
        return 2;
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "tabulard: error: unknown option '%s'\n%s",
                   arg.c_str(), kUsage);
      return 2;
    }
  }

  if (options.unix_path.empty()) {
    const size_t colon = listen.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      std::fprintf(stderr, "tabulard: error: --listen expects host:port\n");
      return 2;
    }
    options.host = listen.substr(0, colon);
    options.port = static_cast<uint16_t>(
        std::strtoul(listen.c_str() + colon + 1, nullptr, 10));
  }

  tabular::core::TabularDatabase db;
  if (!db_path.empty()) {
    auto loaded = tabular::io::LoadDatabaseFile(db_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "tabulard: error: cannot load '%s': %s\n",
                   db_path.c_str(), loaded.status().message().c_str());
      return 2;
    }
    db = std::move(*loaded);
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("tabulard: pipe");
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = OnShutdownSignal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  auto server = Server::Start(std::move(db), options);
  if (!server.ok()) {
    std::fprintf(stderr, "tabulard: error: %s\n",
                 server.status().message().c_str());
    return 1;
  }
  if (!quiet) {
    std::printf("tabulard: listening on %s (%zu table(s), cache %zu)\n",
                (*server)->endpoint().c_str(),
                (*server)->versions().Current().db->size(),
                options.cache.capacity);
    if ((*server)->metrics_port() >= 0) {
      std::printf("tabulard: metrics on http://%s:%d/metrics\n",
                  options.host.c_str(), (*server)->metrics_port());
    }
    std::fflush(stdout);
  }

  // Block until a shutdown signal or a client Shutdown request, whichever
  // comes first, then drain and exit 0. The signal watcher runs in a
  // helper thread so the Shutdown *request* path needs no signal at all.
  std::thread signal_watcher([&server] {
    char byte;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    (*server)->RequestShutdown();
  });
  (*server)->WaitForShutdownRequest();
  if (!quiet) {
    std::printf("tabulard: draining sessions\n");
    std::fflush(stdout);
  }
  (*server)->Shutdown();
  // Unblock the watcher if shutdown came from a client request.
  OnShutdownSignal(0);
  signal_watcher.join();
  if (!quiet) std::printf("tabulard: bye\n");
  return 0;
}
