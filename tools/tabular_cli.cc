// tabular_cli: client for a running tabulard server.
//
//   tabular_cli [--connect host:port | --unix path] <command> [args]
//
// commands:
//   ping                   check the server is alive
//   run <program.ta>       execute and commit a new database version
//   query <program.ta>     execute read-only; prints the resulting
//                          database (grid format) to stdout
//   profile <program.ta>   execute read-only with server-side
//                          instrumentation; prints the profile tree and
//                          the per-operator counter deltas
//   dump                   print the current database (grid format)
//   tables                 list table names, one per line
//   stats                  server statistics as JSON
//   metrics [--prom]       server metrics registry as JSON, or in
//                          Prometheus text exposition format
//   slowlog                drain the server's slow-query log
//   shutdown               ask the server to shut down gracefully
//
// Exit codes: 0 success, 1 server-side error, 2 usage/connection failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "server/client.h"

namespace {

constexpr const char* kUsage =
    R"(usage: tabular_cli [--connect host:port | --unix path] <command> [args]

commands: ping, run <program.ta>, query <program.ta>, profile <program.ta>,
dump, tables, stats, metrics [--prom], slowlog, shutdown
(default endpoint: --connect 127.0.0.1:7690)
)";

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using tabular::server::Client;
  using tabular::server::RunResponse;

  std::string host = "127.0.0.1";
  uint16_t port = 7690;
  std::string unix_path;
  std::string command;
  std::string command_arg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--connect") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tabular_cli: --connect requires host:port\n");
        return 2;
      }
      const std::string spec = argv[++i];
      const size_t colon = spec.rfind(':');
      if (colon == std::string::npos || colon == 0) {
        std::fprintf(stderr, "tabular_cli: --connect expects host:port\n");
        return 2;
      }
      host = spec.substr(0, colon);
      port = static_cast<uint16_t>(
          std::strtoul(spec.c_str() + colon + 1, nullptr, 10));
    } else if (arg == "--unix") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tabular_cli: --unix requires a path\n");
        return 2;
      }
      unix_path = argv[++i];
    } else if (command.empty()) {
      command = arg;
    } else if (command_arg.empty()) {
      command_arg = arg;
    } else {
      std::fprintf(stderr, "tabular_cli: unexpected argument '%s'\n%s",
                   arg.c_str(), kUsage);
      return 2;
    }
  }

  if (command.empty()) {
    std::fprintf(stderr, "tabular_cli: no command given\n%s", kUsage);
    return 2;
  }

  auto connected = unix_path.empty() ? Client::ConnectTcp(host, port)
                                     : Client::ConnectUnix(unix_path);
  if (!connected.ok()) {
    std::fprintf(stderr, "tabular_cli: %s\n",
                 connected.status().message().c_str());
    return 2;
  }
  Client client = std::move(*connected);

  auto fail = [](const tabular::Status& st) {
    std::fprintf(stderr, "tabular_cli: error: %s\n", st.ToString().c_str());
    return 1;
  };

  if (command == "ping") {
    tabular::Status st = client.Ping();
    if (!st.ok()) return fail(st);
    std::printf("pong\n");
    return 0;
  }
  if (command == "run" || command == "query") {
    if (command_arg.empty()) {
      std::fprintf(stderr, "tabular_cli: %s requires a .ta file\n%s",
                   command.c_str(), kUsage);
      return 2;
    }
    std::string program;
    if (!ReadFile(command_arg, &program)) {
      std::fprintf(stderr, "tabular_cli: cannot read '%s'\n",
                   command_arg.c_str());
      return 2;
    }
    const bool commit = command == "run";
    auto result = client.Run(program, commit, /*want_dump=*/!commit);
    if (!result.ok()) return fail(result.status());
    if (commit) {
      std::printf("ok: version %llu -> %llu (%s, %llu step(s), "
                  "%u rewrite(s))\n",
                  static_cast<unsigned long long>(result->executed_version),
                  static_cast<unsigned long long>(result->committed_version),
                  result->cache_hit ? "cache hit" : "compiled",
                  static_cast<unsigned long long>(result->steps),
                  result->rewrites_applied);
    } else {
      std::fputs(result->dump.c_str(), stdout);
    }
    return 0;
  }
  if (command == "profile") {
    if (command_arg.empty()) {
      std::fprintf(stderr, "tabular_cli: profile requires a .ta file\n%s",
                   kUsage);
      return 2;
    }
    std::string program;
    if (!ReadFile(command_arg, &program)) {
      std::fprintf(stderr, "tabular_cli: cannot read '%s'\n",
                   command_arg.c_str());
      return 2;
    }
    auto result = client.Profile(program);
    if (!result.ok()) return fail(result.status());
    std::printf("snapshot version %llu (%s, %llu step(s), %u rewrite(s))\n",
                static_cast<unsigned long long>(result->executed_version),
                result->cache_hit ? "cache hit" : "compiled",
                static_cast<unsigned long long>(result->steps),
                result->rewrites_applied);
    std::fputs(result->profile_text.c_str(), stdout);
    std::printf("counters: %s\n", result->counters_json.c_str());
    return 0;
  }
  if (command == "slowlog") {
    auto log = client.SlowLog();
    if (!log.ok()) return fail(log.status());
    if (log->threshold_micros == tabular::obs::QueryLog::kDisabled) {
      std::printf("slow-query log disabled\n");
    } else {
      std::printf("threshold %llu us, %zu entr%s, %llu dropped\n",
                  static_cast<unsigned long long>(log->threshold_micros),
                  log->entries.size(),
                  log->entries.size() == 1 ? "y" : "ies",
                  static_cast<unsigned long long>(log->dropped));
    }
    for (const tabular::obs::QueryLogEntry& e : log->entries) {
      std::printf("prog=%016llx lat=%lluus session=%llu request=%llu "
                  "snapshot=%llu rows=%llu->%llu rewrites=%u %s %s\n",
                  static_cast<unsigned long long>(e.program_hash),
                  static_cast<unsigned long long>(e.latency_us),
                  static_cast<unsigned long long>(e.session_id),
                  static_cast<unsigned long long>(e.request_id),
                  static_cast<unsigned long long>(e.snapshot_version),
                  static_cast<unsigned long long>(e.rows_in),
                  static_cast<unsigned long long>(e.rows_out),
                  e.rewrites_applied, e.cache_hit ? "hit" : "miss",
                  e.ok ? "ok" : "error");
    }
    return 0;
  }
  if (command == "dump") {
    auto dump = client.DumpDatabase();
    if (!dump.ok()) return fail(dump.status());
    std::fputs(dump->database.c_str(), stdout);
    return 0;
  }
  if (command == "tables") {
    auto tables = client.Tables();
    if (!tables.ok()) return fail(tables.status());
    std::fputs(tables->c_str(), stdout);
    return 0;
  }
  if (command == "stats") {
    auto stats = client.Stats();
    if (!stats.ok()) return fail(stats.status());
    std::printf("%s\n", stats->c_str());
    return 0;
  }
  if (command == "metrics") {
    if (command_arg == "--prom") {
      auto metrics = client.MetricsProm();
      if (!metrics.ok()) return fail(metrics.status());
      std::fputs(metrics->c_str(), stdout);
      return 0;
    }
    if (!command_arg.empty()) {
      std::fprintf(stderr, "tabular_cli: metrics takes only --prom\n%s",
                   kUsage);
      return 2;
    }
    auto metrics = client.Metrics();
    if (!metrics.ok()) return fail(metrics.status());
    std::printf("%s\n", metrics->c_str());
    return 0;
  }
  if (command == "shutdown") {
    tabular::Status st = client.Shutdown();
    if (!st.ok()) return fail(st);
    std::printf("shutting down\n");
    return 0;
  }
  std::fprintf(stderr, "tabular_cli: unknown command '%s'\n%s",
               command.c_str(), kUsage);
  return 2;
}
